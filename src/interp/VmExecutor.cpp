//===--- VmExecutor.cpp ---------------------------------------------------===//
//
// The interpreter loop exists twice over one set of op bodies (the
// SIGC_VM_OPS X-macro): a portable switch dispatcher and a
// direct-threaded computed-goto dispatcher (GNU labels-as-values). The
// threaded loop replaces the switch's single shared indirect branch with
// one `goto *` per op body, so the predictor learns each opcode's actual
// successor distribution — the classic direct-threading win, which
// matters here because fleets and cache-miss tiers keep this loop hot.
// Both dispatchers execute identical semantics and counters; bench_tier
// measures them against each other.
//
//===----------------------------------------------------------------------===//

#include "interp/VmExecutor.h"

#include "sema/Kernel.h"

#include <algorithm>
#include <cassert>

#if !defined(SIGC_VM_NO_COMPUTED_GOTO) && \
    (defined(__GNUC__) || defined(__clang__))
#define SIGC_VM_COMPUTED_GOTO 1
#else
#define SIGC_VM_COMPUTED_GOTO 0
#endif

using namespace sigc;

namespace {

/// Unbatched port: every query crosses the environment boundary.
struct DirectPort {
  Environment &Env;
  const StepBindings &Bind;
  bool tick(int32_t Desc, unsigned Instant) {
    return Env.clockTick(Bind.Clocks[Desc], Instant);
  }
  const Value input(int32_t Desc, unsigned Instant) {
    return Env.inputValue(Bind.Inputs[Desc], Instant);
  }
  void output(int32_t Desc, unsigned Instant, const Value &V) {
    Env.writeOutput(Bind.Outputs[Desc], Instant, V);
  }
};

/// Batched port: ticks and inputs come out of the prefetched buffers,
/// outputs land in the flush buffers; no environment crossing at all.
struct BatchPort {
  const unsigned char *Ticks; ///< [desc * Cap + I]
  const Value *Ins;           ///< [desc * Cap + I]
  unsigned Cap = 0;
  unsigned I = 0; ///< Batch-relative instant.
  unsigned char *OutPresent;  ///< [I * NumOut + flush pos]
  Value *OutVals;
  const int32_t *FlushPos; ///< Output desc -> flush position.
  unsigned NumOut = 0;

  bool tick(int32_t Desc, unsigned) {
    return Ticks[static_cast<size_t>(Desc) * Cap + I] != 0;
  }
  const Value &input(int32_t Desc, unsigned) {
    return Ins[static_cast<size_t>(Desc) * Cap + I];
  }
  void output(int32_t Desc, unsigned, const Value &V) {
    size_t At = static_cast<size_t>(I) * NumOut + FlushPos[Desc];
    OutPresent[At] = 1;
    OutVals[At] = V;
  }
};

} // namespace

bool VmExecutor::computedGotoAvailable() {
  return SIGC_VM_COMPUTED_GOTO != 0;
}

void VmExecutor::setDispatch(VmDispatch D) {
  UseGoto = D == VmDispatch::Goto && computedGotoAvailable();
}

void VmExecutor::reset() {
  ClockSlots.assign(CS.NumClockSlots, 0);
  // Scratch slots for interior expression results live after the values.
  ValueSlots.assign(CS.NumValueSlots + CS.NumTempSlots, Value());
  StateSlots = CS.StateInit;
}

void VmExecutor::setStateSlots(const std::vector<Value> &S) {
  assert(S.size() == StateSlots.size() &&
         "state snapshot does not match the compiled step");
  StateSlots = S;
}

void VmExecutor::bind(Environment &Env) {
  Bind = resolveBindings(Env, CS.ClockInputs, CS.Inputs, CS.Outputs);
  BoundIdentity = Env.identity();
  // The flush table maps each output descriptor to its batch-flush
  // position (code order of the WriteOutput instructions) and each
  // position to the environment id just bound.
  FlushPos.assign(CS.Outputs.size(), 0);
  FlushIds.assign(CS.OutputFlushOrder.size(), InvalidEnvId);
  for (size_t Pos = 0; Pos < CS.OutputFlushOrder.size(); ++Pos) {
    FlushPos[CS.OutputFlushOrder[Pos]] = static_cast<int32_t>(Pos);
    FlushIds[Pos] = Bind.Outputs[CS.OutputFlushOrder[Pos]];
  }
}

//===--- The op bodies, shared by both dispatchers ------------------------===//
//
// X(Name, Body...) per opcode, listed in VmOp declaration order (the
// computed-goto table is built positionally from this list). SkipIfAbsent
// is not in the list: it is the one op that moves the PC non-linearly and
// bumps GuardTests instead of Executed, so each dispatcher hand-rolls it.
// Bodies may contain commas — the macro is variadic.

#define SIGC_VM_OPS(X)                                                         \
  X(ReadClockInput, Clock[In.Target] = P.tick(In.Aux, Instant) ? 1 : 0;)       \
  X(EvalClockLiteral, bool V = Vals[In.A].asBool();                            \
    Clock[In.Target] = (V == (In.Aux != 0)) ? 1 : 0;)                          \
  X(EvalClockAnd, Clock[In.Target] = Clock[In.A] & Clock[In.B];)               \
  X(EvalClockOr, Clock[In.Target] = Clock[In.A] | Clock[In.B];)                \
  X(EvalClockDiff,                                                             \
    Clock[In.Target] = static_cast<char>(Clock[In.A] & (Clock[In.B] ^ 1));)    \
  X(CopyClock, Clock[In.Target] = Clock[In.A];)                                \
  X(SetClockFalse, Clock[In.Target] = 0;)                                      \
  X(ReadSignal, Vals[In.Target] = P.input(In.Aux, Instant);)                   \
  X(UnarySlot, Vals[In.Target] =                                               \
        evalUnaryValue(static_cast<UnaryOp>(In.Aux), Vals[In.A]);)             \
  X(BinarySS, Vals[In.Target] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), \
                                                Vals[In.A], Vals[In.B]);)      \
  X(BinarySC, Vals[In.Target] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), \
                                                Vals[In.A], Consts[In.B]);)    \
  X(BinaryCS, Vals[In.Target] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), \
                                                Consts[In.A], Vals[In.B]);)    \
  X(CopyValue, Vals[In.Target] = Vals[In.A];)                                  \
  X(LoadConst, Vals[In.Target] = Consts[In.Aux];)                              \
  X(Select, Vals[In.Target] = Clock[In.Aux] ? Vals[In.A] : Vals[In.B];)        \
  X(LoadDelay, Vals[In.Target] = State[In.A];)                                 \
  X(StoreDelay, State[In.Target] = Vals[In.A];)                                \
  X(WriteOutput, P.output(In.Aux, Instant, Vals[In.A]);)

template <typename Port>
void VmExecutor::execInstantSwitch(Port &P, unsigned Instant) {
  // Presence is recomputed from scratch each instant.
  std::fill(ClockSlots.begin(), ClockSlots.end(), 0);

  const VmInstr *Code = CS.Code.data();
  const int32_t End = static_cast<int32_t>(CS.Code.size());
  char *Clock = ClockSlots.data();
  Value *Vals = ValueSlots.data();
  Value *State = StateSlots.data();
  const Value *Consts = CS.Consts.data();

  int32_t PC = 0;
  while (PC < End) {
    const VmInstr &In = Code[PC];
    if (In.Op == VmOp::SkipIfAbsent) {
      ++GuardTests;
      PC = Clock[In.A] ? PC + 1 : In.Aux;
      continue;
    }
    ++PC;
    Executed += In.Weight;
    switch (In.Op) {
    case VmOp::SkipIfAbsent:
      break; // handled above
#define SIGC_VM_CASE(Name, ...)                                                \
  case VmOp::Name: {                                                           \
    __VA_ARGS__                                                                \
    break;                                                                     \
  }
      SIGC_VM_OPS(SIGC_VM_CASE)
#undef SIGC_VM_CASE
    }
  }
}

template <typename Port>
void VmExecutor::execInstantGoto(Port &P, unsigned Instant) {
#if SIGC_VM_COMPUTED_GOTO
  // Presence is recomputed from scratch each instant.
  std::fill(ClockSlots.begin(), ClockSlots.end(), 0);

  const VmInstr *Code = CS.Code.data();
  const int32_t End = static_cast<int32_t>(CS.Code.size());
  char *Clock = ClockSlots.data();
  Value *Vals = ValueSlots.data();
  Value *State = StateSlots.data();
  const Value *Consts = CS.Consts.data();

  // Positional dispatch table: one label per VmOp, in declaration order.
#define SIGC_VM_TABLE_ENTRY(Name, ...) &&L_##Name,
  static const void *const Table[] = {&&L_SkipIfAbsent,
                                      SIGC_VM_OPS(SIGC_VM_TABLE_ENTRY)};
#undef SIGC_VM_TABLE_ENTRY

  int32_t PC = 0;
#define SIGC_VM_DISPATCH()                                                     \
  do {                                                                         \
    if (PC >= End)                                                             \
      return;                                                                  \
    goto *Table[static_cast<uint8_t>(Code[PC].Op)];                            \
  } while (0)

  SIGC_VM_DISPATCH();

L_SkipIfAbsent: {
  const VmInstr &In = Code[PC];
  ++GuardTests;
  PC = Clock[In.A] ? PC + 1 : In.Aux;
  SIGC_VM_DISPATCH();
}

#define SIGC_VM_LABEL(Name, ...)                                               \
  L_##Name: {                                                                  \
    const VmInstr &In = Code[PC];                                              \
    ++PC;                                                                      \
    Executed += In.Weight;                                                     \
    __VA_ARGS__                                                                \
    SIGC_VM_DISPATCH();                                                        \
  }
  SIGC_VM_OPS(SIGC_VM_LABEL)
#undef SIGC_VM_LABEL
#undef SIGC_VM_DISPATCH
#else
  execInstantSwitch(P, Instant);
#endif
}

template <typename Port>
void VmExecutor::execInstant(Port &P, unsigned Instant) {
  if (UseGoto)
    execInstantGoto(P, Instant);
  else
    execInstantSwitch(P, Instant);
}

void VmExecutor::step(Environment &Env, unsigned Instant) {
  if (Env.identity() != BoundIdentity)
    bind(Env);
  DirectPort P{Env, Bind};
  execInstant(P, Instant);
}

void VmExecutor::reserveBatch(unsigned MaxCount) {
  if (MaxCount <= BatchCap)
    return;
  BatchCap = MaxCount;
  TickBuf.assign(CS.ClockInputs.size() * static_cast<size_t>(BatchCap), 0);
  InBuf.assign(CS.Inputs.size() * static_cast<size_t>(BatchCap), Value());
  OutPresent.assign(static_cast<size_t>(BatchCap) * CS.Outputs.size(), 0);
  OutVals.assign(static_cast<size_t>(BatchCap) * CS.Outputs.size(), Value());
  WatchBuf.assign(WatchSlots.size() * static_cast<size_t>(BatchCap), 0);
}

void VmExecutor::setWatchSlots(std::vector<int> Slots) {
  WatchSlots = std::move(Slots);
  WatchBuf.assign(WatchSlots.size() * static_cast<size_t>(BatchCap), 0);
}

void VmExecutor::stepN(Environment &Env, unsigned Start, unsigned Count) {
  if (Count == 0)
    return;
  if (Env.identity() != BoundIdentity)
    bind(Env);
  reserveBatch(Count);

  const unsigned NumOut = static_cast<unsigned>(CS.Outputs.size());

  // One boundary crossing per descriptor: prefetch the whole window.
  for (size_t D = 0; D < CS.ClockInputs.size(); ++D)
    Env.clockTicks(Bind.Clocks[D], Start, Count, &TickBuf[D * BatchCap]);
  for (size_t D = 0; D < CS.Inputs.size(); ++D)
    Env.inputValues(Bind.Inputs[D], Start, Count, &InBuf[D * BatchCap]);
  std::fill(OutPresent.begin(),
            OutPresent.begin() + static_cast<size_t>(Count) * NumOut, 0);

  BatchPort P;
  P.Ticks = TickBuf.data();
  P.Ins = InBuf.data();
  P.Cap = BatchCap;
  P.OutPresent = OutPresent.data();
  P.OutVals = OutVals.data();
  P.FlushPos = FlushPos.data();
  P.NumOut = NumOut;

  for (unsigned I = 0; I < Count; ++I) {
    P.I = I;
    execInstant(P, Start + I);
    for (size_t W = 0; W < WatchSlots.size(); ++W)
      WatchBuf[W * BatchCap + I] =
          WatchSlots[W] >= 0 ? ClockSlots[WatchSlots[W]] : 0;
  }

  // One crossing back: flush the batch's outputs in unbatched order.
  Env.exchangeOutputs(Start, Count, NumOut, FlushIds.data(),
                      OutPresent.data(), OutVals.data());
}

void VmExecutor::run(Environment &Env, unsigned Count) {
  for (unsigned I = 0; I < Count; ++I)
    step(Env, I);
}

void VmExecutor::runBatched(Environment &Env, unsigned Count,
                            unsigned BatchSize) {
  if (BatchSize == 0)
    BatchSize = 1;
  for (unsigned Start = 0; Start < Count; Start += BatchSize)
    stepN(Env, Start, std::min(BatchSize, Count - Start));
}
