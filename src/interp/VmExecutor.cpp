//===--- VmExecutor.cpp ---------------------------------------------------===//

#include "interp/VmExecutor.h"

#include "sema/Kernel.h"

#include <algorithm>
#include <cassert>

using namespace sigc;

void VmExecutor::reset() {
  ClockSlots.assign(CS.NumClockSlots, 0);
  // Scratch slots for interior expression results live after the values.
  ValueSlots.assign(CS.NumValueSlots + CS.NumTempSlots, Value());
  StateSlots = CS.StateInit;
}

void VmExecutor::bind(Environment &Env) {
  Bind = resolveBindings(Env, CS.ClockInputs, CS.Inputs, CS.Outputs);
  BoundIdentity = Env.identity();
}

void VmExecutor::step(Environment &Env, unsigned Instant) {
  if (Env.identity() != BoundIdentity)
    bind(Env);

  // Presence is recomputed from scratch each instant.
  std::fill(ClockSlots.begin(), ClockSlots.end(), 0);

  const VmInstr *Code = CS.Code.data();
  const int32_t End = static_cast<int32_t>(CS.Code.size());
  char *Clock = ClockSlots.data();
  Value *Vals = ValueSlots.data();
  Value *State = StateSlots.data();

  int32_t PC = 0;
  while (PC < End) {
    const VmInstr &In = Code[PC];
    if (In.Op == VmOp::SkipIfAbsent) {
      ++GuardTests;
      PC = Clock[In.A] ? PC + 1 : In.Aux;
      continue;
    }
    ++PC;
    Executed += In.Weight;
    switch (In.Op) {
    case VmOp::SkipIfAbsent:
      break; // handled above
    case VmOp::ReadClockInput:
      Clock[In.Target] = Env.clockTick(Bind.Clocks[In.Aux], Instant) ? 1 : 0;
      break;
    case VmOp::EvalClockLiteral: {
      bool V = Vals[In.A].asBool();
      Clock[In.Target] = (V == (In.Aux != 0)) ? 1 : 0;
      break;
    }
    case VmOp::EvalClockAnd:
      Clock[In.Target] = Clock[In.A] & Clock[In.B];
      break;
    case VmOp::EvalClockOr:
      Clock[In.Target] = Clock[In.A] | Clock[In.B];
      break;
    case VmOp::EvalClockDiff:
      Clock[In.Target] =
          static_cast<char>(Clock[In.A] & (Clock[In.B] ^ 1));
      break;
    case VmOp::CopyClock:
      Clock[In.Target] = Clock[In.A];
      break;
    case VmOp::SetClockFalse:
      Clock[In.Target] = 0;
      break;
    case VmOp::ReadSignal:
      Vals[In.Target] = Env.inputValue(Bind.Inputs[In.Aux], Instant);
      break;
    case VmOp::UnarySlot:
      Vals[In.Target] =
          evalUnaryValue(static_cast<UnaryOp>(In.Aux), Vals[In.A]);
      break;
    case VmOp::BinarySS:
      Vals[In.Target] = evalBinaryValue(static_cast<BinaryOp>(In.Aux),
                                        Vals[In.A], Vals[In.B]);
      break;
    case VmOp::BinarySC:
      Vals[In.Target] = evalBinaryValue(static_cast<BinaryOp>(In.Aux),
                                        Vals[In.A], CS.Consts[In.B]);
      break;
    case VmOp::BinaryCS:
      Vals[In.Target] = evalBinaryValue(static_cast<BinaryOp>(In.Aux),
                                        CS.Consts[In.A], Vals[In.B]);
      break;
    case VmOp::CopyValue:
      Vals[In.Target] = Vals[In.A];
      break;
    case VmOp::LoadConst:
      Vals[In.Target] = CS.Consts[In.Aux];
      break;
    case VmOp::Select:
      Vals[In.Target] = Clock[In.Aux] ? Vals[In.A] : Vals[In.B];
      break;
    case VmOp::LoadDelay:
      Vals[In.Target] = State[In.A];
      break;
    case VmOp::StoreDelay:
      State[In.Target] = Vals[In.A];
      break;
    case VmOp::WriteOutput:
      Env.writeOutput(Bind.Outputs[In.Aux], Instant, Vals[In.A]);
      break;
    }
  }
}

void VmExecutor::run(Environment &Env, unsigned Count) {
  for (unsigned I = 0; I < Count; ++I)
    step(Env, I);
}
