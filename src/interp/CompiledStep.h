//===--- CompiledStep.h - Slot-resolved step bytecode -----------*- C++-*-===//
///
/// \file
/// The execution-ready form of a StepProgram, built once per compilation
/// and designed so the per-instant loop does *no* work the paper's
/// generated code would not do (Section 4, Figure 9):
///
///   * every instruction carries pre-resolved descriptor indices — no
///     linear scans of the ClockInputs/Inputs/Outputs tables at run time,
///   * Func operator trees are flattened to three-address expression
///     bytecode over preallocated scratch slots (the register form of a
///     postfix flattening: same bottom-up order, but each operator
///     dispatches once and constant subtrees fold at build time) — zero
///     per-instant heap allocation in the steady state,
///   * the nested block tree is linearized into a single instruction
///     stream with skip-offsets: an absent clock advances the PC past its
///     whole subtree in O(1) instead of recursing through execBlock,
///   * partially-absent clock operands (slot -1) and constant "when"
///     arms are resolved at build time into dedicated opcodes, so the
///     hot loop never re-derives them.
///
/// The guard economics are preserved exactly: one SkipIfAbsent per nested
/// block, instructions inside run unguarded. VmExecutor's GuardTests and
/// Executed counters therefore match nested StepExecutor runs bit for bit
/// — the regression tests pin that equality.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_COMPILEDSTEP_H
#define SIGNALC_INTERP_COMPILEDSTEP_H

#include "codegen/StepProgram.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sigc {

/// Opcode of one VM instruction.
enum class VmOp : uint8_t {
  SkipIfAbsent,   ///< if (!clock[A]) pc = Aux — linearized block guard.
  ReadClockInput, ///< clock[Target] := env tick of clock-input desc Aux.
  EvalClockLiteral, ///< clock[Target] := value[A] == (Aux != 0).
  EvalClockAnd,   ///< clock[Target] := clock[A] && clock[B]
  EvalClockOr,    ///< clock[Target] := clock[A] || clock[B]
  EvalClockDiff,  ///< clock[Target] := clock[A] && !clock[B]
  CopyClock,      ///< clock[Target] := clock[A]
  SetClockFalse,  ///< clock[Target] := false (statically absent operand).
  ReadSignal,     ///< value[Target] := env input of input desc Aux.
  // Expression bytecode: Func trees lower to sequences of these, interior
  // results landing in scratch value slots; exactly one instruction of
  // each sequence carries Weight 1 (see VmInstr::Weight).
  UnarySlot,      ///< value[Target] := UnaryOp(Aux)(value[A])
  BinarySS,       ///< value[Target] := BinaryOp(Aux)(value[A], value[B])
  BinarySC,       ///< value[Target] := BinaryOp(Aux)(value[A], consts[B])
  BinaryCS,       ///< value[Target] := BinaryOp(Aux)(consts[A], value[B])
  CopyValue,      ///< value[Target] := value[A]
  LoadConst,      ///< value[Target] := consts[Aux]
  Select,         ///< value[Target] := clock[Aux] ? value[A] : value[B]
  LoadDelay,      ///< value[Target] := state[A]
  StoreDelay,     ///< state[Target] := value[A]
  WriteOutput,    ///< env output of output desc Aux := value[A].
};

const char *vmOpName(VmOp Op);

/// One VM instruction; meanings of the fields depend on the opcode.
struct VmInstr {
  VmOp Op = VmOp::SetClockFalse;
  /// Contribution to the Executed counter. A step instruction lowered to
  /// several VM instructions (a multi-operator Func tree) counts once:
  /// the root carries 1, interior scratch computations carry 0, keeping
  /// the counter comparable with the nested StepExecutor's.
  int8_t Weight = 1;
  int32_t Target = -1;
  int32_t A = -1;
  int32_t B = -1;
  int32_t Aux = -1;
};

/// A slot-resolved, allocation-free compiled reactive step.
struct CompiledStep {
  unsigned NumClockSlots = 0;
  unsigned NumValueSlots = 0; ///< Signal value slots (scratch excluded).
  unsigned NumTempSlots = 0;  ///< Scratch slots appended after the values.
  std::vector<Value> StateInit;

  std::vector<VmInstr> Code; ///< Linearized nested structure.
  std::vector<Value> Consts; ///< Constant pool.

  /// Environment-facing descriptors, copied from the StepProgram so a
  /// CompiledStep is self-contained (the linked executor keeps one per
  /// unit without holding the whole compilation).
  std::vector<StepProgram::ClockInputDesc> ClockInputs;
  std::vector<StepProgram::SignalIODesc> Inputs;
  std::vector<StepProgram::SignalIODesc> Outputs;

  /// Per-signal clock slot (-1 when empty); the linked executor's dynamic
  /// presence check reads it.
  std::vector<int> SignalClockSlot;

  /// Declared type of each value slot (scratch slots excluded); the C
  /// emitter materializes slots as typed locals from this.
  std::vector<TypeKind> ValueSlotType;

  /// Output descriptor indices in the order their WriteOutput
  /// instructions appear in Code. Batched execution buffers a whole
  /// batch of outputs and flushes them instant by instant in this order,
  /// reproducing exactly the event sequence an unbatched run records.
  std::vector<int32_t> OutputFlushOrder;

  /// Builds the slot-resolved step from a compiled StepProgram.
  static CompiledStep build(const KernelProgram &Prog,
                            const StepProgram &Step);

  /// Renders the instruction listing (tests, --dump-vm).
  std::string dump() const;
};

} // namespace sigc

#endif // SIGNALC_INTERP_COMPILEDSTEP_H
