//===--- StepExecutor.h - Step-program execution ----------------*- C++-*-===//
///
/// \file
/// Executes a compiled StepProgram instant by instant against an
/// Environment, in either control structure:
///   * flat  — every instruction tests its own guard,
///   * nested — block guards are tested once; instructions inside run
///     unguarded (the clock-tree optimization of Section 3.4).
/// Both structures must produce identical outputs; the difference is the
/// number of guard tests, which the executor counts so benchmarks can
/// report the paper's claimed effect directly.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_STEPEXECUTOR_H
#define SIGNALC_INTERP_STEPEXECUTOR_H

#include "codegen/StepProgram.h"
#include "interp/Environment.h"

#include <vector>

namespace sigc {

/// Control structure to execute.
enum class ExecMode { Flat, Nested };

/// Interprets a StepProgram.
class StepExecutor {
public:
  StepExecutor(const KernelProgram &Prog, const StepProgram &Step)
      : Prog(Prog), Step(Step) {
    reset();
  }

  /// Re-initializes the delay states.
  void reset();

  /// Resolves the environment binding now (otherwise done lazily on the
  /// first step with a new environment).
  void bind(Environment &Env);

  /// Runs one reaction. \p Instant tags environment queries and outputs.
  void step(Environment &Env, unsigned Instant, ExecMode Mode);

  /// Runs \p Count reactions starting at instant 0.
  void run(Environment &Env, unsigned Count, ExecMode Mode);

  /// Guard tests performed so far (the metric of the Figure-9 ablation).
  uint64_t guardTests() const { return GuardTests; }
  /// Instructions actually executed so far.
  uint64_t executed() const { return Executed; }
  void resetCounters() {
    GuardTests = 0;
    Executed = 0;
  }

  /// Post-step inspection (testing).
  bool clockPresent(int Slot) const { return ClockSlots[Slot]; }
  const Value &value(int Slot) const { return ValueSlots[Slot]; }

  /// The environment binding of the last bind() (linked wiring reads it).
  const StepBindings &bindings() const { return Bind; }

private:
  void execInstr(const StepInstr &In, Environment &Env, unsigned Instant);
  void execBlock(int BlockIdx, Environment &Env, unsigned Instant);

  const KernelProgram &Prog;
  const StepProgram &Step;
  uint64_t BoundIdentity = 0; ///< identity() of the bound environment.
  StepBindings Bind;
  std::vector<bool> ClockSlots;
  std::vector<Value> ValueSlots;
  std::vector<Value> StateSlots;
  uint64_t GuardTests = 0;
  uint64_t Executed = 0;
};

} // namespace sigc

#endif // SIGNALC_INTERP_STEPEXECUTOR_H
