//===--- KernelInterp.cpp -------------------------------------------------===//

#include "interp/KernelInterp.h"

#include <cassert>

using namespace sigc;

KernelInterp::KernelInterp(const KernelProgram &Prog, const ClockSystem &Sys,
                           ClockForest &Forest, const StringInterner &Names)
    : Prog(Prog), Sys(Sys), Forest(Forest), Names(Names) {
  NodeOrder = Forest.dfsOrder();
  SignalNode.assign(Prog.numSignals(), -1);
  for (SignalId S = 0; S < Prog.numSignals(); ++S)
    SignalNode[S] = Forest.nodeOf(Sys.signalClock(S));
  DelayEqOfSignal.assign(Prog.numSignals(), -1);
  for (unsigned EqI = 0; EqI < Prog.Equations.size(); ++EqI)
    if (Prog.Equations[EqI].Kind == KernelEqKind::Delay) {
      DelayEqOfSignal[Prog.Equations[EqI].Target] =
          static_cast<int>(DelayEqIndex.size());
      DelayEqIndex.push_back(static_cast<int>(EqI));
    }
  reset();
}

void KernelInterp::bind(Environment &Env) {
  RootClock.assign(Forest.numNodes(), InvalidEnvId);
  for (ForestNodeId N : NodeOrder) {
    const ClockNode &Node = Forest.node(N);
    if (Node.Def == ClockDefKind::Root)
      RootClock[N] = Env.resolveClock(Sys.varName(Node.Rep, Prog, Names));
  }
  InputId.assign(Prog.numSignals(), InvalidEnvId);
  OutputId.assign(Prog.numSignals(), InvalidEnvId);
  for (SignalId S = 0; S < Prog.numSignals(); ++S)
    if (!Prog.definition(S))
      InputId[S] = Env.resolveInput(Names.spelling(Prog.Signals[S].Name),
                                    Prog.Signals[S].Type);
  for (SignalId S : Prog.outputs())
    OutputId[S] = Env.resolveOutput(Names.spelling(Prog.Signals[S].Name),
                                    Prog.Signals[S].Type);
  BoundIdentity = Env.identity();
}

void KernelInterp::reset() {
  DelayState.clear();
  for (int EqI : DelayEqIndex)
    DelayState.push_back(Prog.Equations[EqI].DelayInit);
}

bool KernelInterp::step(Environment &Env, unsigned Instant) {
  if (Env.identity() != BoundIdentity)
    bind(Env);

  unsigned MaxNode = Forest.numNodes();
  ClockKnown.assign(MaxNode, 0);
  ClockOn.assign(MaxNode, 0);
  ValueKnown.assign(Prog.numSignals(), 0);
  Present.assign(Prog.numSignals(), 0);
  Values.assign(Prog.numSignals(), Value());

  // Free roots tick per the environment; everything else starts unknown.
  for (ForestNodeId N : NodeOrder) {
    if (RootClock[N] != InvalidEnvId) {
      ClockKnown[N] = 1;
      ClockOn[N] = Env.clockTick(RootClock[N], Instant) ? 1 : 0;
    }
  }

  auto nodeKnown = [&](ForestNodeId N) {
    return N == InvalidForestNode || ClockKnown[N];
  };
  auto nodeOn = [&](ForestNodeId N) {
    return N != InvalidForestNode && ClockOn[N];
  };

  // Chaotic iteration until stable.
  bool Progress = true;
  while (Progress) {
    Progress = false;

    // Clocks.
    for (ForestNodeId N : NodeOrder) {
      if (ClockKnown[N])
        continue;
      const ClockNode &Node = Forest.node(N);
      switch (Node.Def) {
      case ClockDefKind::Root:
        break;
      case ClockDefKind::Literal: {
        // The literal's recipe reads its condition's clock, which may sit
        // above the tree parent after reparenting.
        ForestNodeId P = Forest.nodeOf(Sys.signalClock(Node.CondSignal));
        if (P == InvalidForestNode || !ClockKnown[P])
          break;
        if (!ClockOn[P]) {
          ClockKnown[N] = 1;
          ClockOn[N] = 0;
          Progress = true;
          break;
        }
        if (!ValueKnown[Node.CondSignal])
          break;
        bool V = Values[Node.CondSignal].asBool();
        ClockKnown[N] = 1;
        ClockOn[N] = (V == Node.Positive) ? 1 : 0;
        Progress = true;
        break;
      }
      case ClockDefKind::Derived:
      case ClockDefKind::Residual: {
        ForestNodeId A = Forest.nodeOf(Node.OpA);
        ForestNodeId B = Forest.nodeOf(Node.OpB);
        if (!nodeKnown(A) || !nodeKnown(B))
          break;
        bool On = false;
        switch (Node.Op) {
        case ClockOp::Inter:
          On = nodeOn(A) && nodeOn(B);
          break;
        case ClockOp::Union:
          On = nodeOn(A) || nodeOn(B);
          break;
        case ClockOp::Diff:
          On = nodeOn(A) && !nodeOn(B);
          break;
        }
        ClockKnown[N] = 1;
        ClockOn[N] = On ? 1 : 0;
        Progress = true;
        break;
      }
      }
    }

    // Signals.
    for (SignalId S = 0; S < Prog.numSignals(); ++S) {
      if (ValueKnown[S])
        continue;
      int N = SignalNode[S];
      if (N == InvalidForestNode) {
        // Null clock: never present.
        ValueKnown[S] = 1;
        Progress = true;
        continue;
      }
      if (!ClockKnown[N])
        continue;
      if (!ClockOn[N]) {
        ValueKnown[S] = 1;
        Progress = true;
        continue;
      }
      const KernelEq *Def = Prog.definition(S);
      if (!Def) {
        // Environment input (or free local).
        Values[S] = Env.inputValue(InputId[S], Instant);
        Present[S] = 1;
        ValueKnown[S] = 1;
        Progress = true;
        continue;
      }
      switch (Def->Kind) {
      case KernelEqKind::Delay: {
        Values[S] = DelayState[DelayEqOfSignal[S]];
        Present[S] = 1;
        ValueKnown[S] = 1;
        Progress = true;
        break;
      }
      case KernelEqKind::Func: {
        bool Ready = true;
        for (SignalId Arg : Def->Args)
          Ready &= ValueKnown[Arg] != 0;
        if (!Ready)
          break;
        std::vector<Value> Args;
        for (SignalId Arg : Def->Args)
          Args.push_back(Values[Arg]);
        Values[S] = evalFuncTree(*Def, Args);
        Present[S] = 1;
        ValueKnown[S] = 1;
        Progress = true;
        break;
      }
      case KernelEqKind::When: {
        if (Def->WhenValue.isSignal()) {
          if (!ValueKnown[Def->WhenValue.Sig])
            break;
          Values[S] = Values[Def->WhenValue.Sig];
        } else {
          Values[S] = Def->WhenValue.Const;
        }
        Present[S] = 1;
        ValueKnown[S] = 1;
        Progress = true;
        break;
      }
      case KernelEqKind::Default: {
        SignalId U = Def->DefaultPreferred;
        SignalId V = Def->DefaultAlternative;
        int UN = SignalNode[U];
        bool UPresent = UN != InvalidForestNode && ClockKnown[UN] &&
                        ClockOn[UN];
        bool UKnownAbsent =
            UN == InvalidForestNode || (ClockKnown[UN] && !ClockOn[UN]);
        if (UPresent) {
          if (!ValueKnown[U])
            break;
          Values[S] = Values[U];
        } else if (UKnownAbsent) {
          if (!ValueKnown[V])
            break;
          Values[S] = Values[V];
        } else {
          break; // U's presence not decided yet.
        }
        Present[S] = 1;
        ValueKnown[S] = 1;
        Progress = true;
        break;
      }
      }
    }
  }

  // Everything must have resolved.
  for (ForestNodeId N : NodeOrder)
    if (!ClockKnown[N])
      return false;
  for (SignalId S = 0; S < Prog.numSignals(); ++S)
    if (!ValueKnown[S])
      return false;

  // Outputs, through the ids bound once — no name re-materialization per
  // event.
  for (SignalId S : Prog.outputs())
    if (Present[S])
      Env.writeOutput(OutputId[S], Instant, Values[S]);

  // Advance delay memories.
  for (unsigned DI = 0; DI < DelayEqIndex.size(); ++DI) {
    const KernelEq &Eq = Prog.Equations[DelayEqIndex[DI]];
    if (Present[Eq.Target])
      DelayState[DI] = Values[Eq.DelaySource];
  }
  return true;
}

bool KernelInterp::run(Environment &Env, unsigned Count) {
  for (unsigned I = 0; I < Count; ++I)
    if (!step(Env, I))
      return false;
  return true;
}
