//===--- VmExecutor.h - CompiledStep execution ------------------*- C++-*-===//
///
/// \file
/// Executes a CompiledStep instant by instant against an Environment.
/// The per-instant loop is a flat PC walk over the VM instruction stream:
/// absent clocks skip their subtree via SkipIfAbsent offsets, expressions
/// run three-address over preallocated scratch slots, and every
/// environment query uses the slot ids bound once per (executor,
/// environment) pair. In the steady state one instant performs zero heap
/// allocations (pinned by the counting-allocator test).
///
/// Guard/instruction counters mirror the nested StepExecutor exactly, so
/// benchmarks and regression tests can compare the two modes' guard
/// economics number for number.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_VMEXECUTOR_H
#define SIGNALC_INTERP_VMEXECUTOR_H

#include "interp/CompiledStep.h"
#include "interp/Environment.h"

#include <vector>

namespace sigc {

/// Interprets a CompiledStep.
class VmExecutor {
public:
  explicit VmExecutor(const CompiledStep &CS) : CS(CS) { reset(); }

  /// Re-initializes the delay states.
  void reset();

  /// Resolves the environment binding now (otherwise done lazily on the
  /// first step with a new environment).
  void bind(Environment &Env);

  /// Runs one reaction. \p Instant tags environment queries and outputs.
  void step(Environment &Env, unsigned Instant);

  /// Runs \p Count reactions starting at instant 0.
  void run(Environment &Env, unsigned Count);

  /// Guard tests performed so far; equals the nested StepExecutor's count
  /// on the same trace (one test per block entry).
  uint64_t guardTests() const { return GuardTests; }
  /// Instructions actually executed so far (skip tests excluded).
  uint64_t executed() const { return Executed; }
  void resetCounters() {
    GuardTests = 0;
    Executed = 0;
  }

  /// Post-step inspection (testing, linked dynamic checks).
  bool clockPresent(int Slot) const { return ClockSlots[Slot] != 0; }
  const Value &value(int Slot) const { return ValueSlots[Slot]; }

  /// The environment binding of the last bind() (linked wiring reads it).
  const StepBindings &bindings() const { return Bind; }

private:
  const CompiledStep &CS;
  uint64_t BoundIdentity = 0; ///< identity() of the bound environment.
  StepBindings Bind;
  std::vector<char> ClockSlots;
  std::vector<Value> ValueSlots; ///< Values, then scratch slots.
  std::vector<Value> StateSlots;
  uint64_t GuardTests = 0;
  uint64_t Executed = 0;
};

} // namespace sigc

#endif // SIGNALC_INTERP_VMEXECUTOR_H
