//===--- VmExecutor.h - CompiledStep execution ------------------*- C++-*-===//
///
/// \file
/// Executes a CompiledStep instant by instant against an Environment.
/// The per-instant loop is a flat PC walk over the VM instruction stream:
/// absent clocks skip their subtree via SkipIfAbsent offsets, expressions
/// run three-address over preallocated scratch slots, and every
/// environment query uses the slot ids bound once per (executor,
/// environment) pair. In the steady state one instant performs zero heap
/// allocations (pinned by the counting-allocator test).
///
/// stepN() runs a whole batch of instants with one environment crossing
/// per descriptor: free-clock ticks and input values are fetched up
/// front through the bulk exchange API, outputs are buffered and flushed
/// once at batch end in exactly the order an unbatched run would record
/// them. Slots stay hot across the batch; traces and counters are
/// bit-identical to N calls of step().
///
/// Guard/instruction counters mirror the nested StepExecutor exactly, so
/// benchmarks and regression tests can compare the two modes' guard
/// economics number for number.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_VMEXECUTOR_H
#define SIGNALC_INTERP_VMEXECUTOR_H

#include "interp/CompiledStep.h"
#include "interp/Environment.h"

#include <vector>

namespace sigc {

/// Instruction-dispatch strategy of the interpreter loop. Direct-threaded
/// dispatch (GNU labels-as-values: one indirect `goto *` per instruction,
/// so the branch predictor keys each opcode's successor separately)
/// is the default wherever the compiler supports it; the portable switch
/// loop remains both as the fallback and as a benchmarking baseline.
enum class VmDispatch : uint8_t {
  Switch, ///< Portable `switch` dispatch.
  Goto,   ///< Direct-threaded computed-goto dispatch.
};

/// Interprets a CompiledStep.
class VmExecutor {
public:
  explicit VmExecutor(const CompiledStep &CS) : CS(CS) { reset(); }

  /// True when this build carries the computed-goto dispatcher
  /// (GCC/Clang; disable with -DSIGC_VM_NO_COMPUTED_GOTO).
  static bool computedGotoAvailable();

  /// Selects the dispatch strategy. Requests for an unavailable
  /// dispatcher fall back to the portable switch. Trace and counters are
  /// dispatch-independent — only the loop's branch structure changes.
  void setDispatch(VmDispatch D);
  VmDispatch dispatch() const {
    return UseGoto ? VmDispatch::Goto : VmDispatch::Switch;
  }

  /// Re-initializes the delay states.
  void reset();

  /// Resolves the environment binding now (otherwise done lazily on the
  /// first step with a new environment).
  void bind(Environment &Env);

  /// Runs one reaction. \p Instant tags environment queries and outputs.
  void step(Environment &Env, unsigned Instant);

  /// Runs \p Count reactions starting at instant \p Start, crossing the
  /// environment boundary once per descriptor per batch (bulk tick and
  /// input prefetch, one output flush). Trace and counters equal \p Count
  /// calls of step(). Allocation-free once the batch buffers exist (see
  /// reserveBatch).
  void stepN(Environment &Env, unsigned Start, unsigned Count);

  /// Runs \p Count reactions starting at instant 0.
  void run(Environment &Env, unsigned Count);

  /// Runs \p Count reactions starting at instant 0, stepN-batched in
  /// windows of \p BatchSize.
  void runBatched(Environment &Env, unsigned Count, unsigned BatchSize);

  /// Preallocates the batch buffers for batches of up to \p MaxCount
  /// instants; stepN grows them on demand otherwise (a one-time
  /// allocation, after which stepN is allocation-free).
  void reserveBatch(unsigned MaxCount);

  /// Clock slots whose presence stepN records per instant (the linked
  /// executor's dynamic channel checks read them back).
  void setWatchSlots(std::vector<int> Slots);
  /// Presence of watch slot \p Watch at batch-relative instant \p I of
  /// the last stepN.
  bool watchPresence(size_t Watch, unsigned I) const {
    return WatchBuf[Watch * BatchCap + I] != 0;
  }

  /// Guard tests performed so far; equals the nested StepExecutor's count
  /// on the same trace (one test per block entry).
  uint64_t guardTests() const { return GuardTests; }
  /// Instructions actually executed so far (skip tests excluded).
  uint64_t executed() const { return Executed; }
  void resetCounters() {
    GuardTests = 0;
    Executed = 0;
  }

  /// Post-step inspection (testing, linked dynamic checks).
  bool clockPresent(int Slot) const { return ClockSlots[Slot] != 0; }
  const Value &value(int Slot) const { return ValueSlots[Slot]; }

  /// The environment binding of the last bind() (linked wiring reads it).
  const StepBindings &bindings() const { return Bind; }

  //===--- State exchange (tier hot-swap, tests) --------------------------===//

  /// The delay-state slots as they stand now. Taken at a batch boundary
  /// this is the complete execution state beyond the stimulus itself —
  /// what the native tier imports on a VM->native hot swap.
  const std::vector<Value> &stateSlots() const { return StateSlots; }

  /// Restores delay state captured by stateSlots() (a native->VM swap or
  /// a checkpoint restore). Sizes must match the compiled step.
  void setStateSlots(const std::vector<Value> &S);

  /// Seeds the guard/executed counters (a swap carries them across tiers
  /// so a swapped run's totals equal an uninterrupted run's).
  void setCounters(uint64_t Guards, uint64_t Instrs) {
    GuardTests = Guards;
    Executed = Instrs;
  }

private:
  /// One instant's PC walk; \p Port supplies ticks/inputs and receives
  /// outputs (direct environment queries or batch buffers).
  template <typename Port> void execInstant(Port &P, unsigned Instant);
  /// The two dispatch loops over the same op bodies.
  template <typename Port> void execInstantSwitch(Port &P, unsigned Instant);
  template <typename Port> void execInstantGoto(Port &P, unsigned Instant);

  const CompiledStep &CS;
  bool UseGoto = computedGotoAvailable();
  uint64_t BoundIdentity = 0; ///< identity() of the bound environment.
  StepBindings Bind;
  std::vector<char> ClockSlots;
  std::vector<Value> ValueSlots; ///< Values, then scratch slots.
  std::vector<Value> StateSlots;
  uint64_t GuardTests = 0;
  uint64_t Executed = 0;

  //===--- Batch state ----------------------------------------------------===//
  unsigned BatchCap = 0;               ///< Capacity of all batch buffers.
  std::vector<unsigned char> TickBuf;  ///< [clock desc][instant].
  std::vector<Value> InBuf;            ///< [input desc][instant].
  std::vector<unsigned char> OutPresent; ///< [instant][flush position].
  std::vector<Value> OutVals;            ///< [instant][flush position].
  std::vector<int32_t> FlushPos;       ///< Output desc -> flush position.
  std::vector<EnvOutputId> FlushIds;   ///< Flush position -> bound env id.
  std::vector<int> WatchSlots;
  std::vector<unsigned char> WatchBuf; ///< [watch][instant].
};

} // namespace sigc

#endif // SIGNALC_INTERP_VMEXECUTOR_H
