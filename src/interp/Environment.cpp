//===--- Environment.cpp --------------------------------------------------===//

#include "interp/Environment.h"

#include <cassert>

using namespace sigc;

Environment::~Environment() = default;

void Environment::writeOutput(const std::string &SignalName, unsigned Instant,
                              const Value &V) {
  Outputs.push_back({Instant, SignalName, V});
}

std::string sigc::formatEvents(const std::vector<OutputEvent> &Events) {
  std::string Out;
  for (const OutputEvent &E : Events)
    Out += std::to_string(E.Instant) + " " + E.Signal + "=" + E.Val.str() +
           "\n";
  return Out;
}

uint64_t RandomEnvironment::draw(const std::string &Name,
                                 unsigned Instant) const {
  // splitmix64 over a combination of the seed, the name hash and the
  // instant: a pure function of its inputs, independent of query order.
  uint64_t X = Seed ^ (std::hash<std::string>()(Name) * 0x9e3779b97f4a7c15ull)
               ^ (static_cast<uint64_t>(Instant) * 0xbf58476d1ce4e5b9ull);
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

bool RandomEnvironment::clockTick(const std::string &ClockName,
                                  unsigned Instant) {
  return draw("tick:" + ClockName, Instant) % 1000 < TickPermille;
}

Value RandomEnvironment::inputValue(const std::string &SignalName,
                                    TypeKind Type, unsigned Instant) {
  uint64_t R = draw("val:" + SignalName, Instant);
  switch (Type) {
  case TypeKind::Boolean:
    return Value::makeBool(R % 2 == 0);
  case TypeKind::Event:
    return Value::makeEvent();
  case TypeKind::Integer: {
    uint64_t Span = static_cast<uint64_t>(IntHi - IntLo + 1);
    return Value::makeInt(IntLo + static_cast<int64_t>(R % Span));
  }
  case TypeKind::Real:
    return Value::makeReal(static_cast<double>(R % 10000) / 100.0);
  case TypeKind::Unknown:
    break;
  }
  return Value::makeInt(0);
}

bool ScriptedEnvironment::clockTick(const std::string &ClockName,
                                    unsigned Instant) {
  auto It = Ticks.find({ClockName, Instant});
  if (It != Ticks.end())
    return It->second;
  return AlwaysTick;
}

Value ScriptedEnvironment::inputValue(const std::string &SignalName,
                                      TypeKind Type, unsigned Instant) {
  auto It = Values.find({SignalName, Instant});
  if (It != Values.end())
    return It->second;
  // Absent script entries default to neutral values; tests that care set
  // every queried value explicitly.
  switch (Type) {
  case TypeKind::Boolean:
    return Value::makeBool(false);
  case TypeKind::Event:
    return Value::makeEvent();
  case TypeKind::Integer:
    return Value::makeInt(0);
  case TypeKind::Real:
    return Value::makeReal(0.0);
  case TypeKind::Unknown:
    break;
  }
  return Value::makeInt(0);
}
