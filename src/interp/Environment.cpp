//===--- Environment.cpp --------------------------------------------------===//

#include "interp/Environment.h"

#include <atomic>
#include <cassert>

using namespace sigc;

Environment::~Environment() = default;

uint64_t Environment::nextIdentity() {
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

uint32_t
Environment::internBinding(std::vector<NamedBinding> &Table,
                           std::unordered_map<std::string, uint32_t> &Idx,
                           std::string_view Name, TypeKind Type) {
  auto It = Idx.find(std::string(Name));
  if (It != Idx.end())
    return It->second;
  uint32_t Id = static_cast<uint32_t>(Table.size());
  Table.push_back({std::string(Name), Type});
  Idx.emplace(Table.back().Name, Id);
  return Id;
}

EnvClockId Environment::resolveClock(std::string_view Name) {
  return internBinding(ClockB, ClockIdx, Name, TypeKind::Event);
}

EnvInputId Environment::resolveInput(std::string_view Name, TypeKind Type) {
  return internBinding(InputB, InputIdx, Name, Type);
}

EnvOutputId Environment::resolveOutput(std::string_view Name, TypeKind Type) {
  return internBinding(OutputB, OutputIdx, Name, Type);
}

void Environment::writeOutput(EnvOutputId Output, unsigned Instant,
                              const Value &V) {
  Outputs.push_back({Instant, OutputB[Output].Name, V});
}

void Environment::clockTicks(EnvClockId Clock, unsigned Start, unsigned Count,
                             unsigned char *Out) {
  for (unsigned I = 0; I < Count; ++I)
    Out[I] = clockTick(Clock, Start + I) ? 1 : 0;
}

void Environment::inputValues(EnvInputId Input, unsigned Start,
                              unsigned Count, Value *Out) {
  for (unsigned I = 0; I < Count; ++I)
    Out[I] = inputValue(Input, Start + I);
}

void Environment::exchangeOutputs(unsigned Start, unsigned Count,
                                  unsigned NumOutputs, const EnvOutputId *Ids,
                                  const unsigned char *Present,
                                  const Value *Vals) {
  // Instants outer, outputs inner (in the executor's emission order):
  // the recorded event sequence is bit-identical to an unbatched run's.
  for (unsigned I = 0; I < Count; ++I)
    for (unsigned O = 0; O < NumOutputs; ++O)
      if (Present[I * NumOutputs + O])
        writeOutput(Ids[O], Start + I, Vals[I * NumOutputs + O]);
}

std::string sigc::formatEvents(const std::vector<OutputEvent> &Events) {
  std::string Out;
  for (const OutputEvent &E : Events)
    Out += std::to_string(E.Instant) + " " + E.Signal + "=" + E.Val.str() +
           "\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// RandomEnvironment
//===----------------------------------------------------------------------===//

uint64_t RandomEnvironment::draw(uint64_t NameSeed, unsigned Instant) {
  // splitmix64 over a combination of the per-name seed and the instant: a
  // pure function of its inputs, independent of query and binding order.
  uint64_t X =
      NameSeed ^ (static_cast<uint64_t>(Instant) * 0xbf58476d1ce4e5b9ull);
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

uint64_t RandomEnvironment::nameSeed(const char *Prefix,
                                     std::string_view Name) const {
  // Hashed exactly as the historical per-query formula did ("tick:" /
  // "val:" + name through std::hash), so traces are stable across the
  // slot-resolution rework; the hash now happens once per binding.
  std::string Key = Prefix + std::string(Name);
  return Seed ^ (std::hash<std::string>()(Key) * 0x9e3779b97f4a7c15ull);
}

EnvClockId RandomEnvironment::resolveClock(std::string_view Name) {
  EnvClockId Id = Environment::resolveClock(Name);
  if (Id >= ClockSeed.size())
    ClockSeed.resize(Id + 1, 0);
  ClockSeed[Id] = nameSeed("tick:", Name);
  return Id;
}

EnvInputId RandomEnvironment::resolveInput(std::string_view Name,
                                           TypeKind Type) {
  EnvInputId Id = Environment::resolveInput(Name, Type);
  if (Id >= InputSeed.size())
    InputSeed.resize(Id + 1, 0);
  InputSeed[Id] = nameSeed("val:", Name);
  return Id;
}

bool RandomEnvironment::clockTick(EnvClockId Clock, unsigned Instant) {
  return draw(ClockSeed[Clock], Instant) % 1000 < TickPermille;
}

void RandomEnvironment::clockTicks(EnvClockId Clock, unsigned Start,
                                   unsigned Count, unsigned char *Out) {
  uint64_t S = ClockSeed[Clock];
  for (unsigned I = 0; I < Count; ++I)
    Out[I] = draw(S, Start + I) % 1000 < TickPermille ? 1 : 0;
}

void RandomEnvironment::inputValues(EnvInputId Input, unsigned Start,
                                    unsigned Count, Value *Out) {
  uint64_t S = InputSeed[Input];
  switch (inputBindingType(Input)) {
  case TypeKind::Boolean:
    for (unsigned I = 0; I < Count; ++I)
      Out[I] = Value::makeBool(draw(S, Start + I) % 2 == 0);
    return;
  case TypeKind::Event:
    for (unsigned I = 0; I < Count; ++I)
      Out[I] = Value::makeEvent();
    return;
  case TypeKind::Integer: {
    uint64_t Span = static_cast<uint64_t>(IntHi - IntLo + 1);
    for (unsigned I = 0; I < Count; ++I)
      Out[I] = Value::makeInt(IntLo +
                              static_cast<int64_t>(draw(S, Start + I) % Span));
    return;
  }
  case TypeKind::Real:
    for (unsigned I = 0; I < Count; ++I)
      Out[I] =
          Value::makeReal(static_cast<double>(draw(S, Start + I) % 10000) /
                          100.0);
    return;
  case TypeKind::Unknown:
    break;
  }
  for (unsigned I = 0; I < Count; ++I)
    Out[I] = Value::makeInt(0);
}

Value RandomEnvironment::inputValue(EnvInputId Input, unsigned Instant) {
  uint64_t R = draw(InputSeed[Input], Instant);
  switch (inputBindingType(Input)) {
  case TypeKind::Boolean:
    return Value::makeBool(R % 2 == 0);
  case TypeKind::Event:
    return Value::makeEvent();
  case TypeKind::Integer: {
    uint64_t Span = static_cast<uint64_t>(IntHi - IntLo + 1);
    return Value::makeInt(IntLo + static_cast<int64_t>(R % Span));
  }
  case TypeKind::Real:
    return Value::makeReal(static_cast<double>(R % 10000) / 100.0);
  case TypeKind::Unknown:
    break;
  }
  return Value::makeInt(0);
}

//===----------------------------------------------------------------------===//
// ScriptedEnvironment
//===----------------------------------------------------------------------===//

bool ScriptedEnvironment::clockTick(EnvClockId Clock, unsigned Instant) {
  auto It = Ticks.find({clockBindingName(Clock), Instant});
  if (It != Ticks.end())
    return It->second;
  return AlwaysTick;
}

Value ScriptedEnvironment::inputValue(EnvInputId Input, unsigned Instant) {
  auto It = Values.find({inputBindingName(Input), Instant});
  if (It != Values.end())
    return It->second;
  // Absent script entries default to neutral values; tests that care set
  // every queried value explicitly.
  switch (inputBindingType(Input)) {
  case TypeKind::Boolean:
    return Value::makeBool(false);
  case TypeKind::Event:
    return Value::makeEvent();
  case TypeKind::Integer:
    return Value::makeInt(0);
  case TypeKind::Real:
    return Value::makeReal(0.0);
  case TypeKind::Unknown:
    break;
  }
  return Value::makeInt(0);
}
