//===--- LinkedExecutor.h - Linked-system execution -------------*- C++-*-===//
///
/// \file
/// Executes a LinkedSystem instant by instant: each unit's step runs
/// through its own slot-VM (VmExecutor over a CompiledStep), in the
/// linker's cross-process order; channel wiring happens in the
/// environment layer through index-based arrays computed once from the
/// linker's pre-resolved channel descriptors — the per-instant loop does
/// no name hashing and no map rebuilds. A per-unit adapter environment
///
///   * answers a channel-bound clock id with the producer's presence of
///     the channel signal this instant,
///   * answers a channel-bound input id with the producer's output value,
///   * forwards everything else (unbound ticks, external inputs) to the
///     outer environment through ids resolved against it once — exactly
///     the queries the monolithic compilation of the composed program
///     would make,
///   * records every unit output in a dense presence/value array; only
///     external outputs reach the outer environment's trace.
///
/// stepN() batches per unit: each unit runs a whole window of instants
/// through VmExecutor::stepN before the next unit runs at all (the
/// cross-process schedule is feedback-free, so a producer's entire
/// window is available to its consumers). Channel feeds and produced
/// outputs become [index × instant] matrices, external outputs are
/// buffered and flushed to the outer environment at window end in
/// exactly the unbatched order, and the unbatched trace/counters are
/// reproduced bit for bit.
///
/// Channels whose consumer derives the clock itself (ConsumerClockInput
/// == -1) are checked dynamically: after the consumer's step, both sides
/// must agree on presence, otherwise the run stops with a diagnostic (a
/// clock-interface violation the linker could not prove either way). In
/// batched runs the checks replay per instant from presence recorded by
/// the VM's watch slots, and the first violation — ordered by instant,
/// then by unit order — cuts the flush exactly where an unbatched run
/// would have stopped.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_LINKEDEXECUTOR_H
#define SIGNALC_INTERP_LINKEDEXECUTOR_H

#include "interp/VmExecutor.h"
#include "link/Linker.h"

#include <memory>
#include <string>
#include <vector>

namespace sigc {

/// Interprets a linked multi-process system.
class LinkedExecutor {
public:
  explicit LinkedExecutor(const LinkedSystem &Sys);

  /// Re-initializes every unit's delay states.
  void reset();

  /// Runs one reaction across all units. \returns false on a dynamic
  /// clock-constraint violation (see error()).
  bool step(Environment &Env, unsigned Instant);

  /// Runs \p Count reactions starting at instant \p Start, batched per
  /// unit (see the file comment). On clean runs, trace- and
  /// counter-identical to \p Count step()s. On a dynamic
  /// clock-interface violation the outer environment's trace is still
  /// cut exactly where an unbatched run stops, but the executors have
  /// already run the whole window (counters include post-error
  /// instants) and the diagnostic is always the watch-check's "clock
  /// mismatch" wording, where an unbatched run may report the
  /// consumer-side read first.
  bool stepN(Environment &Env, unsigned Start, unsigned Count);

  /// Runs \p Count reactions starting at instant 0.
  bool run(Environment &Env, unsigned Count);

  /// Runs \p Count reactions starting at instant 0, stepN-batched in
  /// windows of \p BatchSize.
  bool runBatched(Environment &Env, unsigned Count, unsigned BatchSize);

  /// Non-empty after step()/run() returned false.
  const std::string &error() const { return Error; }

  /// Guard tests summed over every unit's executor.
  uint64_t guardTests() const;
  /// Instructions executed summed over every unit's executor.
  uint64_t executed() const;

private:
  /// The per-unit adapter environment. All routing tables are dense
  /// arrays indexed by this environment's own EnvIds and sized once at
  /// construction — deliberately no name-based adapter re-exports here:
  /// resolving a new name after construction would mint an id past the
  /// routing arrays' end. Channel feeds and produced outputs are
  /// [index * Cap + (instant - BatchStart)] matrices; unbatched steps
  /// run with offset 0, batched windows fill whole rows.
  class UnitEnv : public Environment {
  public:
    Environment *Outer = nullptr;
    /// Clock id -> feeding in-channel index (-1 = forward to Outer).
    std::vector<int> ClockChannel;
    /// Input id -> feeding in-channel index (-1 = forward to Outer).
    std::vector<int> InputChannel;
    /// Output id -> Outer's output id when external, InvalidEnvId else.
    std::vector<EnvOutputId> ExternalOut;
    /// Clock/input id -> the id Outer resolved for the same name.
    std::vector<EnvClockId> OuterClock;
    std::vector<EnvInputId> OuterInput;
    /// Channel feed matrix, [in-channel index * Cap + offset].
    std::vector<unsigned char> ChanPresent;
    std::vector<Value> ChanVal;
    /// Production matrix, [output id * Cap + offset].
    std::vector<unsigned char> ProducedPresent;
    std::vector<Value> ProducedVal;
    /// Stride and base of the current window (Cap >= 1 always).
    unsigned Cap = 1;
    unsigned BatchStart = 0;
    /// True while a stepN window runs: external outputs are buffered for
    /// the ordered flush instead of being forwarded immediately.
    bool BatchMode = false;
    std::string *Error = nullptr;

    bool clockTick(EnvClockId Clock, unsigned Instant) override;
    Value inputValue(EnvInputId Input, unsigned Instant) override;
    void writeOutput(EnvOutputId Output, unsigned Instant,
                     const Value &V) override;
    void clockTicks(EnvClockId Clock, unsigned Start, unsigned Count,
                    unsigned char *Out) override;
    void inputValues(EnvInputId Input, unsigned Start, unsigned Count,
                     Value *Out) override;
  };

  /// One feeding channel of a unit, in index-resolved form.
  struct InChannel {
    const LinkChannel *Ch = nullptr;
    unsigned Producer = 0;
    EnvOutputId ProducerOut = InvalidEnvId; ///< Id in the producer's env.
  };

  struct UnitState {
    CompiledStep Compiled;
    std::unique_ptr<VmExecutor> Exec;
    UnitEnv Env;
    std::vector<InChannel> InChannels;
    /// In-channel indices needing the dynamic presence check, aligned
    /// with the executor's watch slots.
    std::vector<int> DynChannels;
    /// Output env ids in the unit's per-instant emission order (the
    /// batched external flush walks these).
    std::vector<EnvOutputId> FlushEnvIds;
  };

  /// Resolves the forwarding ids of every unit against \p Outer.
  void bindOuter(Environment &Outer);

  /// Grows every unit's window matrices to \p MaxCount instants.
  void reserveBatch(unsigned MaxCount);

  const LinkedSystem &Sys;
  /// By pointer: UnitEnv (an Environment) is pinned to its address.
  std::vector<std::unique_ptr<UnitState>> States;
  unsigned BatchCap = 1;
  uint64_t BoundOuterIdentity = 0;
  std::string Error;
};

} // namespace sigc

#endif // SIGNALC_INTERP_LINKEDEXECUTOR_H
