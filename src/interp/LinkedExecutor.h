//===--- LinkedExecutor.h - Linked-system execution -------------*- C++-*-===//
///
/// \file
/// Executes a LinkedSystem instant by instant: each unit's step runs
/// through its own slot-VM (VmExecutor over a CompiledStep), in the
/// linker's cross-process order; channel wiring happens in the
/// environment layer through index-based arrays computed once from the
/// linker's pre-resolved channel descriptors — the per-instant loop does
/// no name hashing and no map rebuilds. A per-unit adapter environment
///
///   * answers a channel-bound clock id with the producer's presence of
///     the channel signal this instant,
///   * answers a channel-bound input id with the producer's output value,
///   * forwards everything else (unbound ticks, external inputs) to the
///     outer environment through ids resolved against it once — exactly
///     the queries the monolithic compilation of the composed program
///     would make,
///   * records every unit output in a dense presence/value array; only
///     external outputs reach the outer environment's trace.
///
/// Channels whose consumer derives the clock itself (ConsumerClockInput
/// == -1) are checked dynamically: after the consumer's step, both sides
/// must agree on presence, otherwise the run stops with a diagnostic (a
/// clock-interface violation the linker could not prove either way).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_LINKEDEXECUTOR_H
#define SIGNALC_INTERP_LINKEDEXECUTOR_H

#include "interp/VmExecutor.h"
#include "link/Linker.h"

#include <memory>
#include <string>
#include <vector>

namespace sigc {

/// Interprets a linked multi-process system.
class LinkedExecutor {
public:
  explicit LinkedExecutor(const LinkedSystem &Sys);

  /// Re-initializes every unit's delay states.
  void reset();

  /// Runs one reaction across all units. \returns false on a dynamic
  /// clock-constraint violation (see error()).
  bool step(Environment &Env, unsigned Instant);

  /// Runs \p Count reactions starting at instant 0.
  bool run(Environment &Env, unsigned Count);

  /// Non-empty after step()/run() returned false.
  const std::string &error() const { return Error; }

  /// Guard tests summed over every unit's executor.
  uint64_t guardTests() const;
  /// Instructions executed summed over every unit's executor.
  uint64_t executed() const;

private:
  /// The per-unit adapter environment. All routing tables are dense
  /// arrays indexed by this environment's own EnvIds and sized once at
  /// construction — deliberately no name-based adapter re-exports here:
  /// resolving a new name after construction would mint an id past the
  /// routing arrays' end.
  class UnitEnv : public Environment {
  public:
    Environment *Outer = nullptr;
    /// Clock id -> feeding in-channel index (-1 = forward to Outer).
    std::vector<int> ClockChannel;
    /// Input id -> feeding in-channel index (-1 = forward to Outer).
    std::vector<int> InputChannel;
    /// Output id -> Outer's output id when external, InvalidEnvId else.
    std::vector<EnvOutputId> ExternalOut;
    /// Clock/input id -> the id Outer resolved for the same name.
    std::vector<EnvClockId> OuterClock;
    std::vector<EnvInputId> OuterInput;
    /// This instant's channel feed, per in-channel index.
    std::vector<char> ChanPresent;
    std::vector<Value> ChanVal;
    /// This instant's production, per output id.
    std::vector<char> ProducedPresent;
    std::vector<Value> ProducedVal;
    std::string *Error = nullptr;

    bool clockTick(EnvClockId Clock, unsigned Instant) override;
    Value inputValue(EnvInputId Input, unsigned Instant) override;
    void writeOutput(EnvOutputId Output, unsigned Instant,
                     const Value &V) override;
  };

  /// One feeding channel of a unit, in index-resolved form.
  struct InChannel {
    const LinkChannel *Ch = nullptr;
    unsigned Producer = 0;
    EnvOutputId ProducerOut = InvalidEnvId; ///< Id in the producer's env.
  };

  struct UnitState {
    CompiledStep Compiled;
    std::unique_ptr<VmExecutor> Exec;
    UnitEnv Env;
    std::vector<InChannel> InChannels;
  };

  /// Resolves the forwarding ids of every unit against \p Outer.
  void bindOuter(Environment &Outer);

  const LinkedSystem &Sys;
  /// By pointer: UnitEnv (an Environment) is pinned to its address.
  std::vector<std::unique_ptr<UnitState>> States;
  uint64_t BoundOuterIdentity = 0;
  std::string Error;
};

} // namespace sigc

#endif // SIGNALC_INTERP_LINKEDEXECUTOR_H
