//===--- LinkedExecutor.h - Linked-system execution -------------*- C++-*-===//
///
/// \file
/// Executes a LinkedSystem instant by instant: each unit's StepProgram
/// runs unchanged through its own StepExecutor, in the linker's
/// cross-process order; channel wiring happens in the environment layer.
/// A per-unit adapter environment
///
///   * answers a bound clock input with the producer's presence of the
///     channel signal this instant,
///   * answers a channel input value with the producer's output value,
///   * forwards everything else (unbound ticks, external inputs) to the
///     outer environment by name — exactly the queries the monolithic
///     compilation of the composed program would make,
///   * records every unit output; only external outputs reach the outer
///     environment's trace.
///
/// Channels whose consumer derives the clock itself (ConsumerClockInput
/// == -1) are checked dynamically: after the consumer's step, both sides
/// must agree on presence, otherwise the run stops with a diagnostic (a
/// clock-interface violation the linker could not prove either way).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_LINKEDEXECUTOR_H
#define SIGNALC_INTERP_LINKEDEXECUTOR_H

#include "interp/StepExecutor.h"
#include "link/Linker.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace sigc {

/// Interprets a linked multi-process system.
class LinkedExecutor {
public:
  explicit LinkedExecutor(const LinkedSystem &Sys);

  /// Re-initializes every unit's delay states.
  void reset();

  /// Runs one reaction across all units. \returns false on a dynamic
  /// clock-constraint violation (see error()).
  bool step(Environment &Env, unsigned Instant);

  /// Runs \p Count reactions starting at instant 0.
  bool run(Environment &Env, unsigned Count);

  /// Non-empty after step()/run() returned false.
  const std::string &error() const { return Error; }

  /// Guard tests summed over every unit's executor.
  uint64_t guardTests() const;

private:
  struct ChannelValue {
    bool Present = false;
    Value Val;
  };

  /// The per-unit adapter environment; rebuilt state per instant.
  class UnitEnv : public Environment {
  public:
    Environment *Outer = nullptr;
    /// Clock-input name -> tick bound by a channel this instant.
    std::unordered_map<std::string, bool> BoundTicks;
    /// Channel input name -> the producer's value this instant.
    std::unordered_map<std::string, ChannelValue> BoundInputs;
    /// Output name -> recorded value (all of this unit's outputs).
    std::unordered_map<std::string, ChannelValue> Produced;
    /// Output names that are external (forwarded to Outer).
    std::unordered_map<std::string, bool> ExternalOutput;
    std::string *Error = nullptr;

    bool clockTick(const std::string &ClockName, unsigned Instant) override;
    Value inputValue(const std::string &SignalName, TypeKind Type,
                     unsigned Instant) override;
    void writeOutput(const std::string &SignalName, unsigned Instant,
                     const Value &V) override;
  };

  struct UnitState {
    StepExecutor Exec;
    UnitEnv Env;
    /// Channels feeding this unit (the consumer side), precomputed so
    /// the per-instant loop never rescans the full channel list.
    std::vector<const LinkChannel *> InChannels;
    UnitState(const KernelProgram &Prog, const StepProgram &Step)
        : Exec(Prog, Step) {}
  };

  const LinkedSystem &Sys;
  std::vector<UnitState> States;
  std::string Error;
};

} // namespace sigc

#endif // SIGNALC_INTERP_LINKEDEXECUTOR_H
