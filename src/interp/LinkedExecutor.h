//===--- LinkedExecutor.h - Linked-system execution -------------*- C++-*-===//
///
/// \file
/// Executes a LinkedSystem. Since the linker fuses every unit's bytecode
/// into one CompiledStep (see link/StepFusion.h), execution is simply a
/// VmExecutor over the fused program: channel wiring, cross-process
/// ordering and feedback interleaving were all resolved at link time
/// into plain slot copies, so the hot loop is exactly the single-process
/// hot loop — one guard-nested instruction stream, one environment
/// binding, batched windows and watch slots included.
///
/// The only linked-specific behavior left at run time is the *dynamic*
/// channel check: a channel whose consumer derives the clock itself
/// (ConsumerClockInput == -1) carries a DynCheck record, and after each
/// instant the consumer's derived presence must agree with the
/// producer's export presence, otherwise the run stops with a
/// diagnostic (a clock-interface violation the linker could not prove
/// either way). Unbatched steps compare the two fused clock slots right
/// after the instant; batched windows replay the comparison from the
/// VM's watch-slot recording, and the first violation — ordered by
/// instant, then by check order — cuts the external flush exactly
/// where an unbatched run would have stopped (after the erroring
/// instant, whose outputs a completed fused step has already emitted).
/// The cut is implemented by running batched windows against a
/// buffering environment that delays output forwarding until the
/// checks have passed; systems without dynamic channels skip the
/// buffer entirely.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_LINKEDEXECUTOR_H
#define SIGNALC_INTERP_LINKEDEXECUTOR_H

#include "interp/VmExecutor.h"
#include "link/Linker.h"

#include <string>
#include <vector>

namespace sigc {

/// Interprets a linked multi-process system through its fused step.
class LinkedExecutor {
public:
  explicit LinkedExecutor(const LinkedSystem &Sys);

  /// Re-initializes the fused delay states.
  void reset();

  /// Runs one reaction across the fused system. \returns false on a
  /// dynamic clock-constraint violation (see error()).
  bool step(Environment &Env, unsigned Instant);

  /// Runs \p Count reactions starting at instant \p Start through the
  /// VM's batched window. Trace- and counter-identical to \p Count
  /// step()s on clean runs; on a dynamic violation the outer
  /// environment's trace is still cut exactly where an unbatched run
  /// stops, though the VM has already run the whole window (counters
  /// include post-error instants).
  bool stepN(Environment &Env, unsigned Start, unsigned Count);

  /// Runs \p Count reactions starting at instant 0.
  bool run(Environment &Env, unsigned Count);

  /// Runs \p Count reactions starting at instant 0, stepN-batched in
  /// windows of \p BatchSize.
  bool runBatched(Environment &Env, unsigned Count, unsigned BatchSize);

  /// Non-empty after step()/run() returned false.
  const std::string &error() const { return Error; }

  /// Guard tests of the fused executor.
  uint64_t guardTests() const { return Exec.guardTests(); }
  /// Instructions executed by the fused executor.
  uint64_t executed() const { return Exec.executed(); }

private:
  /// Pass-through environment that buffers outputs: batched windows run
  /// against it so a dynamic-check violation can cut the forwarded
  /// trace at the erroring instant even though the VM flushes whole
  /// windows. Resolution delegates to the outer environment, so every
  /// id this wrapper sees *is* an outer id.
  class BufferEnv : public Environment {
  public:
    Environment *Outer = nullptr;
    struct Rec {
      EnvOutputId Id;
      unsigned Instant;
      Value V;
    };
    std::vector<Rec> Buf;

    EnvClockId resolveClock(std::string_view Name) override {
      return Outer->resolveClock(Name);
    }
    EnvInputId resolveInput(std::string_view Name, TypeKind Type) override {
      return Outer->resolveInput(Name, Type);
    }
    EnvOutputId resolveOutput(std::string_view Name, TypeKind Type) override {
      return Outer->resolveOutput(Name, Type);
    }
    bool clockTick(EnvClockId Clock, unsigned Instant) override {
      return Outer->clockTick(Clock, Instant);
    }
    Value inputValue(EnvInputId Input, unsigned Instant) override {
      return Outer->inputValue(Input, Instant);
    }
    void clockTicks(EnvClockId Clock, unsigned Start, unsigned Count,
                    unsigned char *Out) override {
      Outer->clockTicks(Clock, Start, Count, Out);
    }
    void inputValues(EnvInputId Input, unsigned Start, unsigned Count,
                     Value *Out) override {
      Outer->inputValues(Input, Start, Count, Out);
    }
    // The default exchangeOutputs replays the window through
    // writeOutput instant by instant in emission order, so Buf holds
    // exactly the unbatched forwarding sequence.
    void writeOutput(EnvOutputId Output, unsigned Instant,
                     const Value &V) override {
      Buf.push_back({Output, Instant, V});
    }
  };

  /// Appends the pinned mismatch diagnostic for \p Check at \p Instant.
  std::string mismatchMessage(const LinkedSystem::DynCheck &Check,
                              unsigned Instant, bool ProducerPresent,
                              bool ConsumerPresent) const;

  const LinkedSystem &Sys;
  /// Owned copy: VmExecutor holds its program by reference, and the
  /// executor must not dangle if the LinkedSystem is mutated or freed
  /// mid-lifetime the way per-unit Compilations could be.
  CompiledStep Fused;
  VmExecutor Exec;
  BufferEnv BatchEnv;
  std::string Error;
};

} // namespace sigc

#endif // SIGNALC_INTERP_LINKEDEXECUTOR_H
