//===--- CompiledStep.cpp -------------------------------------------------===//

#include "interp/CompiledStep.h"

#include <cassert>
#include <cstdio>

using namespace sigc;

const char *sigc::vmOpName(VmOp Op) {
  switch (Op) {
  case VmOp::SkipIfAbsent:
    return "skip-if-absent";
  case VmOp::ReadClockInput:
    return "read-clock";
  case VmOp::EvalClockLiteral:
    return "clock-literal";
  case VmOp::EvalClockAnd:
    return "clock-and";
  case VmOp::EvalClockOr:
    return "clock-or";
  case VmOp::EvalClockDiff:
    return "clock-diff";
  case VmOp::CopyClock:
    return "copy-clock";
  case VmOp::SetClockFalse:
    return "clock-false";
  case VmOp::ReadSignal:
    return "read-signal";
  case VmOp::UnarySlot:
    return "unary";
  case VmOp::BinarySS:
    return "binary-ss";
  case VmOp::BinarySC:
    return "binary-sc";
  case VmOp::BinaryCS:
    return "binary-cs";
  case VmOp::CopyValue:
    return "copy";
  case VmOp::LoadConst:
    return "const";
  case VmOp::Select:
    return "select";
  case VmOp::LoadDelay:
    return "load-delay";
  case VmOp::StoreDelay:
    return "store-delay";
  case VmOp::WriteOutput:
    return "write";
  }
  return "?";
}

namespace {

/// Flattens Func operator trees to three-address bytecode and translates
/// step instructions to VM instructions.
class StepLowering {
public:
  StepLowering(const KernelProgram &Prog, const StepProgram &Step,
               CompiledStep &Out)
      : Prog(Prog), Step(Step), Out(Out) {}

  /// Emits \p BlockIdx and its subtree into Out.Code.
  void emitBlock(int BlockIdx) {
    const StepBlock &B = Step.Blocks[BlockIdx];
    int SkipAt = -1;
    if (B.GuardSlot >= 0) {
      SkipAt = static_cast<int>(Out.Code.size());
      VmInstr Skip;
      Skip.Op = VmOp::SkipIfAbsent;
      Skip.Weight = 0; // Guard tests have their own counter.
      Skip.A = B.GuardSlot;
      Out.Code.push_back(Skip);
    }
    for (const StepBlock::Item &It : B.Items) {
      if (It.IsBlock)
        emitBlock(It.Index);
      else
        emitInstr(Step.Instrs[It.Index]);
    }
    if (SkipAt >= 0)
      Out.Code[SkipAt].Aux = static_cast<int32_t>(Out.Code.size());
  }

private:
  /// A flattened operand: a value/scratch slot or a constant-pool entry.
  struct Operand {
    bool IsConst = false;
    int32_t Idx = -1;
  };

  int constIndex(const Value &V) {
    for (size_t I = 0; I < Out.Consts.size(); ++I)
      if (Out.Consts[I].Kind == V.Kind && Out.Consts[I] == V)
        return static_cast<int>(I);
    Out.Consts.push_back(V);
    return static_cast<int>(Out.Consts.size()) - 1;
  }

  /// The scratch slot for interior results at tree depth \p Depth.
  int32_t tempSlot(unsigned Depth) {
    if (Depth + 1 > Out.NumTempSlots)
      Out.NumTempSlots = Depth + 1;
    return static_cast<int32_t>(Out.NumValueSlots + Depth);
  }

  /// Emits code computing node \p NodeIdx of \p Eq. Leaves emit nothing;
  /// constant subtrees fold at build time. Interior results land in the
  /// scratch slot of \p Depth, or directly in \p TargetSlot (>= 0) for
  /// the root — whose instruction then carries Weight 1 for the whole
  /// lowered step instruction.
  Operand emitNode(const KernelEq &Eq, int NodeIdx, unsigned Depth,
                   int32_t TargetSlot) {
    const FuncNode &N = Eq.Nodes[NodeIdx];
    switch (N.Kind) {
    case FuncNode::Kind::Arg: {
      int32_t Slot = Step.SignalValueSlot[Eq.Args[N.ArgIndex]];
      assert(Slot >= 0 && "func over a dead-clock operand");
      return {false, Slot};
    }
    case FuncNode::Kind::Const:
      return {true, constIndex(N.Const)};
    case FuncNode::Kind::Unary: {
      Operand C = emitNode(Eq, N.Lhs, Depth, -1);
      if (C.IsConst)
        return {true, constIndex(evalUnaryValue(N.UOp, Out.Consts[C.Idx]))};
      VmInstr V;
      V.Op = VmOp::UnarySlot;
      V.Weight = TargetSlot >= 0 ? 1 : 0;
      V.Target = TargetSlot >= 0 ? TargetSlot : tempSlot(Depth);
      V.A = C.Idx;
      V.Aux = static_cast<int32_t>(N.UOp);
      Out.Code.push_back(V);
      return {false, V.Target};
    }
    case FuncNode::Kind::Binary: {
      Operand L = emitNode(Eq, N.Lhs, Depth, -1);
      Operand R = emitNode(Eq, N.Rhs, Depth + 1, -1);
      if (L.IsConst && R.IsConst)
        return {true, constIndex(evalBinaryValue(N.BOp, Out.Consts[L.Idx],
                                                 Out.Consts[R.Idx]))};
      VmInstr V;
      V.Op = L.IsConst   ? VmOp::BinaryCS
             : R.IsConst ? VmOp::BinarySC
                         : VmOp::BinarySS;
      V.Weight = TargetSlot >= 0 ? 1 : 0;
      // Writing the destination cannot clobber an operand mid-compute:
      // the evaluator computes the result before storing it.
      V.Target = TargetSlot >= 0 ? TargetSlot : tempSlot(Depth);
      V.A = L.Idx;
      V.B = R.Idx;
      V.Aux = static_cast<int32_t>(N.BOp);
      Out.Code.push_back(V);
      return {false, V.Target};
    }
    }
    return {};
  }

  void emitInstr(const StepInstr &In) {
    VmInstr V;
    V.Target = In.Target;
    switch (In.Op) {
    case StepOp::ReadClockInput:
      assert(In.Desc >= 0 && "clock input without descriptor");
      V.Op = VmOp::ReadClockInput;
      V.Aux = In.Desc;
      break;
    case StepOp::EvalClockLiteral:
      V.Op = VmOp::EvalClockLiteral;
      V.A = In.A;
      V.Aux = In.Positive ? 1 : 0;
      break;
    case StepOp::EvalClockOp: {
      // Statically-absent operands (slot -1 = the clock calculus proved
      // the clock empty) are folded away here instead of re-tested every
      // instant.
      bool HasA = In.A >= 0, HasB = In.B >= 0;
      switch (In.COp) {
      case ClockOp::Inter:
        if (HasA && HasB) {
          V.Op = VmOp::EvalClockAnd;
          V.A = In.A;
          V.B = In.B;
        } else {
          V.Op = VmOp::SetClockFalse;
        }
        break;
      case ClockOp::Union:
        if (HasA && HasB) {
          V.Op = VmOp::EvalClockOr;
          V.A = In.A;
          V.B = In.B;
        } else if (HasA || HasB) {
          V.Op = VmOp::CopyClock;
          V.A = HasA ? In.A : In.B;
        } else {
          V.Op = VmOp::SetClockFalse;
        }
        break;
      case ClockOp::Diff:
        if (!HasA) {
          V.Op = VmOp::SetClockFalse;
        } else if (!HasB) {
          V.Op = VmOp::CopyClock;
          V.A = In.A;
        } else {
          V.Op = VmOp::EvalClockDiff;
          V.A = In.A;
          V.B = In.B;
        }
        break;
      }
      break;
    }
    case StepOp::ReadSignal:
      assert(In.Desc >= 0 && "signal input without descriptor");
      V.Op = VmOp::ReadSignal;
      V.Aux = In.Desc;
      break;
    case StepOp::EvalFunc: {
      const KernelEq &Eq = Prog.Equations[In.EqIndex];
      int Root = static_cast<int>(Eq.Nodes.size()) - 1;
      const FuncNode &RootNode = Eq.Nodes[Root];
      if (RootNode.Kind == FuncNode::Kind::Arg ||
          RootNode.Kind == FuncNode::Kind::Const) {
        Operand O = emitNode(Eq, Root, 0, -1);
        V.Op = O.IsConst ? VmOp::LoadConst : VmOp::CopyValue;
        (O.IsConst ? V.Aux : V.A) = O.Idx;
        break;
      }
      Operand O = emitNode(Eq, Root, 0, In.Target);
      if (O.IsConst) {
        // The whole tree folded to a constant.
        V.Op = VmOp::LoadConst;
        V.Aux = O.Idx;
        break;
      }
      return; // emitNode's root instruction already wrote In.Target.
    }
    case StepOp::EvalWhen: {
      const KernelEq &Eq = Prog.Equations[In.EqIndex];
      if (Eq.WhenValue.isSignal()) {
        V.Op = VmOp::CopyValue;
        V.A = In.A;
      } else {
        V.Op = VmOp::LoadConst;
        V.Aux = constIndex(Eq.WhenValue.Const);
      }
      break;
    }
    case StepOp::EvalDefault:
      if (In.A < 0) {
        V.Op = VmOp::CopyValue;
        V.A = In.B;
      } else if (In.B < 0) {
        V.Op = VmOp::CopyValue;
        V.A = In.A;
      } else {
        V.Op = VmOp::Select;
        V.A = In.A;
        V.B = In.B;
        V.Aux = In.PresA;
      }
      break;
    case StepOp::LoadDelay:
      V.Op = VmOp::LoadDelay;
      V.A = In.A;
      break;
    case StepOp::StoreDelay:
      V.Op = VmOp::StoreDelay;
      V.A = In.A;
      break;
    case StepOp::WriteOutput:
      assert(In.Desc >= 0 && "output without descriptor");
      V.Op = VmOp::WriteOutput;
      V.A = In.A;
      V.Aux = In.Desc;
      break;
    }
    Out.Code.push_back(V);
  }

  const KernelProgram &Prog;
  const StepProgram &Step;
  CompiledStep &Out;
};

} // namespace

CompiledStep CompiledStep::build(const KernelProgram &Prog,
                                 const StepProgram &Step) {
  CompiledStep CS;
  CS.NumClockSlots = Step.NumClockSlots;
  CS.NumValueSlots = Step.NumValueSlots;
  CS.StateInit = Step.StateInit;
  CS.ClockInputs = Step.ClockInputs;
  CS.Inputs = Step.Inputs;
  CS.Outputs = Step.Outputs;
  CS.SignalClockSlot = Step.SignalClockSlot;
  CS.ValueSlotType = Step.ValueSlotType;

  StepLowering Lower(Prog, Step, CS);
  if (Step.RootBlock >= 0)
    Lower.emitBlock(Step.RootBlock);

  // Flush order for batched output exchange: each output descriptor, in
  // the order its WriteOutput first appears in the instruction stream.
  std::vector<char> Seen(CS.Outputs.size(), 0);
  for (const VmInstr &In : CS.Code)
    if (In.Op == VmOp::WriteOutput && !Seen[In.Aux]) {
      Seen[In.Aux] = 1;
      CS.OutputFlushOrder.push_back(In.Aux);
    }
  // Descriptors the code never writes (none today) still flush last so
  // the order is total.
  for (size_t I = 0; I < Seen.size(); ++I)
    if (!Seen[I])
      CS.OutputFlushOrder.push_back(static_cast<int32_t>(I));
  return CS;
}

std::string CompiledStep::dump() const {
  std::string Out;
  char Buf[128];
  for (size_t I = 0; I < Code.size(); ++I) {
    const VmInstr &In = Code[I];
    std::snprintf(Buf, sizeof Buf,
                  "%4zu: %-16s t=%-3d a=%-3d b=%-3d aux=%-3d w=%d\n", I,
                  vmOpName(In.Op), In.Target, In.A, In.B, In.Aux, In.Weight);
    Out += Buf;
  }
  std::snprintf(Buf, sizeof Buf,
                "clock slots: %u, value slots: %u, temp slots: %u, "
                "consts: %zu, states: %zu\n",
                NumClockSlots, NumValueSlots, NumTempSlots, Consts.size(),
                StateInit.size());
  Out += Buf;
  return Out;
}
