//===--- StepExecutor.cpp -------------------------------------------------===//

#include "interp/StepExecutor.h"

#include <cassert>

using namespace sigc;

void StepExecutor::reset() {
  ClockSlots.assign(Step.NumClockSlots, false);
  ValueSlots.assign(Step.NumValueSlots, Value());
  StateSlots = Step.StateInit;
}

void StepExecutor::bind(Environment &Env) {
  Bind = resolveBindings(Env, Step.ClockInputs, Step.Inputs, Step.Outputs);
  BoundIdentity = Env.identity();
}

void StepExecutor::execInstr(const StepInstr &In, Environment &Env,
                             unsigned Instant) {
  ++Executed;
  switch (In.Op) {
  case StepOp::ReadClockInput: {
    ClockSlots[In.Target] = Env.clockTick(Bind.Clocks[In.Desc], Instant);
    return;
  }
  case StepOp::EvalClockLiteral: {
    bool V = ValueSlots[In.A].asBool();
    ClockSlots[In.Target] = In.Positive ? V : !V;
    return;
  }
  case StepOp::EvalClockOp: {
    bool A = In.A >= 0 && ClockSlots[In.A];
    bool B = In.B >= 0 && ClockSlots[In.B];
    bool R = false;
    switch (In.COp) {
    case ClockOp::Inter:
      R = A && B;
      break;
    case ClockOp::Union:
      R = A || B;
      break;
    case ClockOp::Diff:
      R = A && !B;
      break;
    }
    ClockSlots[In.Target] = R;
    return;
  }
  case StepOp::ReadSignal: {
    ValueSlots[In.Target] = Env.inputValue(Bind.Inputs[In.Desc], Instant);
    return;
  }
  case StepOp::EvalFunc: {
    const KernelEq &Eq = Prog.Equations[In.EqIndex];
    std::vector<Value> Args;
    Args.reserve(Eq.Args.size());
    for (SignalId S : Eq.Args)
      Args.push_back(ValueSlots[Step.SignalValueSlot[S]]);
    ValueSlots[In.Target] = evalFuncTree(Eq, Args);
    return;
  }
  case StepOp::EvalWhen: {
    const KernelEq &Eq = Prog.Equations[In.EqIndex];
    ValueSlots[In.Target] =
        Eq.WhenValue.isSignal() ? ValueSlots[In.A] : Eq.WhenValue.Const;
    return;
  }
  case StepOp::EvalDefault: {
    if (In.A < 0) {
      ValueSlots[In.Target] = ValueSlots[In.B];
      return;
    }
    if (In.B < 0) {
      ValueSlots[In.Target] = ValueSlots[In.A];
      return;
    }
    ValueSlots[In.Target] =
        ClockSlots[In.PresA] ? ValueSlots[In.A] : ValueSlots[In.B];
    return;
  }
  case StepOp::LoadDelay:
    ValueSlots[In.Target] = StateSlots[In.A];
    return;
  case StepOp::StoreDelay:
    StateSlots[In.Target] = ValueSlots[In.A];
    return;
  case StepOp::WriteOutput: {
    Env.writeOutput(Bind.Outputs[In.Desc], Instant, ValueSlots[In.A]);
    return;
  }
  }
}

void StepExecutor::execBlock(int BlockIdx, Environment &Env,
                             unsigned Instant) {
  const StepBlock &B = Step.Blocks[BlockIdx];
  if (B.GuardSlot >= 0) {
    ++GuardTests;
    if (!ClockSlots[B.GuardSlot])
      return;
  }
  for (const StepBlock::Item &It : B.Items) {
    if (It.IsBlock)
      execBlock(It.Index, Env, Instant);
    else
      execInstr(Step.Instrs[It.Index], Env, Instant);
  }
}

void StepExecutor::step(Environment &Env, unsigned Instant, ExecMode Mode) {
  if (Env.identity() != BoundIdentity)
    bind(Env);

  // Presence is recomputed from scratch each instant.
  std::fill(ClockSlots.begin(), ClockSlots.end(), false);

  if (Mode == ExecMode::Nested) {
    execBlock(Step.RootBlock, Env, Instant);
    return;
  }
  for (const StepInstr &In : Step.Instrs) {
    if (In.Guard >= 0) {
      ++GuardTests;
      if (!ClockSlots[In.Guard])
        continue;
    }
    execInstr(In, Env, Instant);
  }
}

void StepExecutor::run(Environment &Env, unsigned Count, ExecMode Mode) {
  for (unsigned I = 0; I < Count; ++I)
    step(Env, I, Mode);
}
