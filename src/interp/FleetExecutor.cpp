//===--- FleetExecutor.cpp ------------------------------------------------===//

#include "interp/FleetExecutor.h"

#include "native/NativeExecutor.h"
#include "sema/Kernel.h"

#include <algorithm>
#include <cassert>
#include <thread>

using namespace sigc;

namespace {

/// Branchless per-lane clock blend: the new bit where the lane is active,
/// the old bit where it is not (an inactive lane must observe exactly the
/// slot contents a scalar skip would have left behind).
inline char blendClock(char Old, char New, unsigned char Act) {
  return static_cast<char>((New & Act) | (Old & (Act ^ 1)));
}

/// Deepest SkipIfAbsent nesting in \p Code: the mask stack is sized once
/// from this, so the predicated walk never allocates.
unsigned maxGuardDepth(const std::vector<VmInstr> &Code) {
  std::vector<int32_t> Close;
  unsigned Max = 0;
  for (int32_t PC = 0; PC < static_cast<int32_t>(Code.size()); ++PC) {
    while (!Close.empty() && Close.back() == PC)
      Close.pop_back();
    if (Code[PC].Op == VmOp::SkipIfAbsent) {
      Close.push_back(Code[PC].Aux);
      Max = std::max(Max, static_cast<unsigned>(Close.size()));
    }
  }
  return Max;
}

} // namespace

FleetExecutor::FleetExecutor(const CompiledStep &CS, unsigned Instances,
                             Config Cfg)
    : CS(CS), NumInstances(Instances), K(std::max(1u, Cfg.LaneBlock)),
      Cfg(Cfg), MaxDepth(maxGuardDepth(CS.Code)) {
  this->Cfg.LaneBlock = K;
  if (this->Cfg.Threads == 0)
    this->Cfg.Threads = 1;

  Bind.resize(NumInstances);
  BoundIds.assign(NumInstances, 0);
  FlushIds.assign(static_cast<size_t>(NumInstances) * CS.Outputs.size(),
                  InvalidEnvId);
  FlushPos.assign(CS.Outputs.size(), 0);
  for (size_t Pos = 0; Pos < CS.OutputFlushOrder.size(); ++Pos)
    FlushPos[CS.OutputFlushOrder[Pos]] = static_cast<int32_t>(Pos);

  // Shard the fleet into contiguous, lane-block-aligned instance ranges —
  // one per worker. Alignment matters for determinism only in that a
  // block never straddles shards, so the same lane grouping (and thus the
  // same sweep) happens for every thread count.
  unsigned NumBlocks = (NumInstances + K - 1) / K;
  unsigned NumShards = std::max(1u, std::min(this->Cfg.Threads, NumBlocks));
  Shards.resize(NumShards);
  unsigned PerShard = NumBlocks / NumShards;
  unsigned Extra = NumBlocks % NumShards;
  unsigned Block = 0;
  for (unsigned S = 0; S < NumShards; ++S) {
    unsigned Take = PerShard + (S < Extra ? 1 : 0);
    Shards[S].FirstInstance = std::min(Block * K, NumInstances);
    Block += Take;
    Shards[S].EndInstance = std::min(Block * K, NumInstances);
  }

  reset();
}

void FleetExecutor::reset() {
  unsigned NumState = static_cast<unsigned>(CS.StateInit.size());
  StateSoA.assign(static_cast<size_t>(NumState) * NumInstances, Value());
  for (unsigned Slot = 0; Slot < NumState; ++Slot)
    std::fill_n(StateSoA.begin() + static_cast<size_t>(Slot) * NumInstances,
                NumInstances, CS.StateInit[Slot]);
}

void FleetExecutor::bind(const std::vector<Environment *> &Envs) {
  assert(Envs.size() >= NumInstances && "one environment per instance");
  for (unsigned Inst = 0; Inst < NumInstances; ++Inst)
    bindInstance(Inst, *Envs[Inst]);
}

void FleetExecutor::bindInstance(unsigned Inst, Environment &Env) {
  assert(Inst < NumInstances && "instance out of range");
  const size_t NumOut = CS.Outputs.size();
  Bind[Inst] = resolveBindings(Env, CS.ClockInputs, CS.Inputs, CS.Outputs);
  BoundIds[Inst] = Env.identity();
  for (size_t Pos = 0; Pos < CS.OutputFlushOrder.size(); ++Pos)
    FlushIds[Inst * NumOut + Pos] = Bind[Inst].Outputs[CS.OutputFlushOrder[Pos]];
}

void FleetExecutor::resetLanes(unsigned First, unsigned Num) {
  assert(First + Num <= NumInstances && "lane range out of bounds");
  unsigned NumState = static_cast<unsigned>(CS.StateInit.size());
  for (unsigned Slot = 0; Slot < NumState; ++Slot)
    std::fill_n(StateSoA.begin() + static_cast<size_t>(Slot) * NumInstances +
                    First,
                Num, CS.StateInit[Slot]);
}

void FleetExecutor::saveLaneState(unsigned Inst, std::vector<Value> &Out) const {
  assert(Inst < NumInstances && "instance out of range");
  unsigned NumState = stateSlots();
  Out.resize(NumState);
  for (unsigned Slot = 0; Slot < NumState; ++Slot)
    Out[Slot] = StateSoA[static_cast<size_t>(Slot) * NumInstances + Inst];
}

void FleetExecutor::restoreLaneState(unsigned Inst,
                                     const std::vector<Value> &In) {
  assert(Inst < NumInstances && "instance out of range");
  assert(In.size() == stateSlots() &&
         "checkpoint shape does not match the compiled step");
  for (unsigned Slot = 0; Slot < In.size(); ++Slot)
    StateSoA[static_cast<size_t>(Slot) * NumInstances + Inst] = In[Slot];
}

void FleetExecutor::ensureShardCapacity(Shard &S) {
  const unsigned NumValue = CS.NumValueSlots + CS.NumTempSlots;
  const size_t NumOut = CS.Outputs.size();
  const size_t W = WindowCap;
  if (S.ClockSoA.size() != static_cast<size_t>(CS.NumClockSlots) * K) {
    S.ClockSoA.assign(static_cast<size_t>(CS.NumClockSlots) * K, 0);
    S.ValueSoA.assign(static_cast<size_t>(NumValue) * K, Value());
    S.Active.assign(K, 0);
    S.MaskStack.assign(static_cast<size_t>(MaxDepth) * K, 0);
    S.CloseAt.assign(MaxDepth, 0);
  }
  if (S.TickBuf.size() < CS.ClockInputs.size() * static_cast<size_t>(K) * W ||
      S.OutPresent.size() < static_cast<size_t>(K) * W * NumOut ||
      S.InBuf.size() < CS.Inputs.size() * static_cast<size_t>(K) * W) {
    S.TickBuf.assign(CS.ClockInputs.size() * static_cast<size_t>(K) * W, 0);
    S.InBuf.assign(CS.Inputs.size() * static_cast<size_t>(K) * W, Value());
    S.OutPresent.assign(static_cast<size_t>(K) * W * NumOut, 0);
    S.OutVals.assign(static_cast<size_t>(K) * W * NumOut, Value());
  }
}

void FleetExecutor::reserveWindow(unsigned MaxCount) {
  if (MaxCount > WindowCap)
    WindowCap = MaxCount;
  for (Shard &S : Shards)
    ensureShardCapacity(S);
}

void FleetExecutor::setNative(const NativeModule *M) {
  assert((!M || M->numStateSlots() == CS.StateInit.size()) &&
         "native module compiled from a different step");
  Native = M;
}

void FleetExecutor::execBlock(Shard &S, const std::vector<Environment *> &Envs,
                              unsigned I0, unsigned NB, unsigned Start,
                              unsigned Count) {
  if (Native) {
    execBlockNative(S, Envs, I0, NB, Start, Count);
    return;
  }
  const size_t W = WindowCap;
  const unsigned NumOut = static_cast<unsigned>(CS.Outputs.size());

  // One boundary crossing per (descriptor, lane): prefetch the window.
  for (unsigned L = 0; L < NB; ++L) {
    Environment &E = *Envs[I0 + L];
    const StepBindings &B = Bind[I0 + L];
    for (size_t D = 0; D < CS.ClockInputs.size(); ++D)
      E.clockTicks(B.Clocks[D], Start, Count, &S.TickBuf[(D * K + L) * W]);
    for (size_t D = 0; D < CS.Inputs.size(); ++D)
      E.inputValues(B.Inputs[D], Start, Count, &S.InBuf[(D * K + L) * W]);
    if (NumOut)
      std::fill_n(S.OutPresent.begin() + L * W * NumOut,
                  static_cast<size_t>(Count) * NumOut, 0);
  }

  const VmInstr *Code = CS.Code.data();
  const int32_t End = static_cast<int32_t>(CS.Code.size());
  char *Clk = S.ClockSoA.data();
  Value *Vals = S.ValueSoA.data();
  Value *State = StateSoA.data();
  unsigned char *Act = S.Active.data();
  const Value *Consts = CS.Consts.data();

  for (unsigned I = 0; I < Count; ++I) {
    // Presence is recomputed from scratch each instant.
    std::fill(S.ClockSoA.begin(), S.ClockSoA.end(), 0);
    std::fill_n(Act, NB, static_cast<unsigned char>(1));
    unsigned ActiveCount = NB;
    unsigned Depth = 0;

    int32_t PC = 0;
    while (PC < End) {
      // Close every region ending here: restore its saved lane mask.
      while (Depth && S.CloseAt[Depth - 1] == PC) {
        --Depth;
        const unsigned char *Saved = &S.MaskStack[static_cast<size_t>(Depth) * K];
        ActiveCount = 0;
        for (unsigned L = 0; L < NB; ++L) {
          Act[L] = Saved[L];
          ActiveCount += Saved[L];
        }
      }
      const VmInstr &In = Code[PC];
      if (In.Op == VmOp::SkipIfAbsent) {
        // Each lane whose enclosing blocks are active reaches this guard,
        // exactly as in a scalar run: one guard test per such lane.
        S.GuardTests += ActiveCount;
        const char *CRow = &Clk[static_cast<size_t>(In.A) * K];
        unsigned NewCount = 0;
        if (ActiveCount == NB)
          for (unsigned L = 0; L < NB; ++L)
            NewCount += static_cast<unsigned char>(CRow[L]);
        else
          for (unsigned L = 0; L < NB; ++L)
            NewCount += Act[L] & CRow[L];
        if (NewCount == 0) {
          // Scalar fast path: nobody enters, skip the whole subtree.
          PC = In.Aux;
          continue;
        }
        if (NewCount != ActiveCount) {
          unsigned char *Save = &S.MaskStack[static_cast<size_t>(Depth) * K];
          for (unsigned L = 0; L < NB; ++L)
            Save[L] = Act[L];
          S.CloseAt[Depth] = In.Aux;
          ++Depth;
          for (unsigned L = 0; L < NB; ++L)
            Act[L] = static_cast<unsigned char>(Act[L] & CRow[L]);
          ActiveCount = NewCount;
        }
        // NewCount == ActiveCount: every active lane enters, mask
        // unchanged — no push needed.
        ++PC;
        continue;
      }
      ++PC;
      S.Executed += static_cast<uint64_t>(In.Weight) * ActiveCount;
      // Fast path: a fully active block needs no mask maintenance at all
      // — every lane takes the op, so clock blends collapse to plain
      // stores and value ops drop their per-lane predicate test. The
      // common case by construction: a block only narrows below a guard
      // whose clock splits the lanes, and the whole subtree is skipped
      // when nobody enters.
      const bool AllActive = ActiveCount == NB;
      switch (In.Op) {
      case VmOp::SkipIfAbsent:
        break; // handled above
      case VmOp::ReadClockInput: {
        char *T = &Clk[static_cast<size_t>(In.Target) * K];
        const unsigned char *Ticks =
            &S.TickBuf[static_cast<size_t>(In.Aux) * K * W];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = Ticks[L * W + I] != 0;
        else
          for (unsigned L = 0; L < NB; ++L)
            T[L] = blendClock(T[L], Ticks[L * W + I] != 0, Act[L]);
        break;
      }
      case VmOp::EvalClockLiteral: {
        char *T = &Clk[static_cast<size_t>(In.Target) * K];
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = (A[L].asBool() == (In.Aux != 0)) ? 1 : 0;
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = (A[L].asBool() == (In.Aux != 0)) ? 1 : 0;
        break;
      }
      case VmOp::EvalClockAnd: {
        char *T = &Clk[static_cast<size_t>(In.Target) * K];
        const char *A = &Clk[static_cast<size_t>(In.A) * K];
        const char *B = &Clk[static_cast<size_t>(In.B) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = static_cast<char>(A[L] & B[L]);
        else
          for (unsigned L = 0; L < NB; ++L)
            T[L] = blendClock(T[L], A[L] & B[L], Act[L]);
        break;
      }
      case VmOp::EvalClockOr: {
        char *T = &Clk[static_cast<size_t>(In.Target) * K];
        const char *A = &Clk[static_cast<size_t>(In.A) * K];
        const char *B = &Clk[static_cast<size_t>(In.B) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = static_cast<char>(A[L] | B[L]);
        else
          for (unsigned L = 0; L < NB; ++L)
            T[L] = blendClock(T[L], A[L] | B[L], Act[L]);
        break;
      }
      case VmOp::EvalClockDiff: {
        char *T = &Clk[static_cast<size_t>(In.Target) * K];
        const char *A = &Clk[static_cast<size_t>(In.A) * K];
        const char *B = &Clk[static_cast<size_t>(In.B) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = static_cast<char>(A[L] & (B[L] ^ 1));
        else
          for (unsigned L = 0; L < NB; ++L)
            T[L] = blendClock(T[L], static_cast<char>(A[L] & (B[L] ^ 1)),
                              Act[L]);
        break;
      }
      case VmOp::CopyClock: {
        char *T = &Clk[static_cast<size_t>(In.Target) * K];
        const char *A = &Clk[static_cast<size_t>(In.A) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = A[L];
        else
          for (unsigned L = 0; L < NB; ++L)
            T[L] = blendClock(T[L], A[L], Act[L]);
        break;
      }
      case VmOp::SetClockFalse: {
        char *T = &Clk[static_cast<size_t>(In.Target) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = 0;
        else
          for (unsigned L = 0; L < NB; ++L)
            T[L] = static_cast<char>(T[L] & (Act[L] ^ 1));
        break;
      }
      case VmOp::ReadSignal: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value *Ins = &S.InBuf[static_cast<size_t>(In.Aux) * K * W];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = Ins[L * W + I];
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = Ins[L * W + I];
        break;
      }
      case VmOp::UnarySlot: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = evalUnaryValue(static_cast<UnaryOp>(In.Aux), A[L]);
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = evalUnaryValue(static_cast<UnaryOp>(In.Aux), A[L]);
        break;
      }
      case VmOp::BinarySS: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        const Value *B = &Vals[static_cast<size_t>(In.B) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), A[L], B[L]);
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), A[L],
                                     B[L]);
        break;
      }
      case VmOp::BinarySC: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        const Value &C = Consts[In.B];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), A[L], C);
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), A[L], C);
        break;
      }
      case VmOp::BinaryCS: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value &C = Consts[In.A];
        const Value *B = &Vals[static_cast<size_t>(In.B) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), C, B[L]);
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = evalBinaryValue(static_cast<BinaryOp>(In.Aux), C, B[L]);
        break;
      }
      case VmOp::CopyValue: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = A[L];
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = A[L];
        break;
      }
      case VmOp::LoadConst: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value &C = Consts[In.Aux];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = C;
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = C;
        break;
      }
      case VmOp::Select: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        const Value *B = &Vals[static_cast<size_t>(In.B) * K];
        const char *C = &Clk[static_cast<size_t>(In.Aux) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = C[L] ? A[L] : B[L];
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = C[L] ? A[L] : B[L];
        break;
      }
      case VmOp::LoadDelay: {
        Value *T = &Vals[static_cast<size_t>(In.Target) * K];
        const Value *St = &State[static_cast<size_t>(In.A) * NumInstances + I0];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            T[L] = St[L];
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              T[L] = St[L];
        break;
      }
      case VmOp::StoreDelay: {
        Value *St =
            &State[static_cast<size_t>(In.Target) * NumInstances + I0];
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L)
            St[L] = A[L];
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L])
              St[L] = A[L];
        break;
      }
      case VmOp::WriteOutput: {
        const Value *A = &Vals[static_cast<size_t>(In.A) * K];
        const size_t Pos = static_cast<size_t>(FlushPos[In.Aux]);
        if (AllActive)
          for (unsigned L = 0; L < NB; ++L) {
            size_t At = (L * W + I) * NumOut + Pos;
            S.OutPresent[At] = 1;
            S.OutVals[At] = A[L];
          }
        else
          for (unsigned L = 0; L < NB; ++L)
            if (Act[L]) {
              size_t At = (L * W + I) * NumOut + Pos;
              S.OutPresent[At] = 1;
              S.OutVals[At] = A[L];
            }
        break;
      }
      }
    }
  }

  // One crossing back per lane, in instance order: each instance's window
  // flushes through its own environment, reproducing exactly the event
  // sequence its scalar unbatched run records.
  for (unsigned L = 0; L < NB; ++L)
    Envs[I0 + L]->exchangeOutputs(Start, Count, NumOut,
                                  &FlushIds[(I0 + L) * NumOut],
                                  &S.OutPresent[L * W * NumOut],
                                  &S.OutVals[L * W * NumOut]);
}

void FleetExecutor::execBlockNative(Shard &S,
                                    const std::vector<Environment *> &Envs,
                                    unsigned I0, unsigned NB, unsigned Start,
                                    unsigned Count) {
  const size_t W = WindowCap;
  const size_t NumClk = CS.ClockInputs.size();
  const size_t NumIn = CS.Inputs.size();
  const size_t NumOut = CS.Outputs.size();
  const size_t NumState = CS.StateInit.size();
  const size_t Cells = static_cast<size_t>(NB) * Count;

  const size_t ScratchBytes = Native->fleetScratchBytes(NB, Count);
  if (S.NScratch.size() < ScratchBytes)
    S.NScratch.resize(ScratchBytes);
  if (S.NStates.size() < static_cast<size_t>(NB) * NumState)
    S.NStates.resize(static_cast<size_t>(NB) * NumState);
  if (S.NGuards.size() < NB) {
    S.NGuards.resize(NB);
    S.NExecs.resize(NB);
  }
  if (S.NTicks.size() < Cells * std::max<size_t>(1, NumClk))
    S.NTicks.resize(Cells * std::max<size_t>(1, NumClk));
  if (S.NIns.size() < Cells * std::max<size_t>(1, NumIn))
    S.NIns.resize(Cells * std::max<size_t>(1, NumIn));
  if (S.NOutP.size() < Cells * std::max<size_t>(1, NumOut)) {
    S.NOutP.resize(Cells * std::max<size_t>(1, NumOut));
    S.NOutV.resize(Cells * std::max<size_t>(1, NumOut));
  }

  // Prefetch through the interpreter's staging buffers (one environment
  // crossing per descriptor per lane), then transpose into the dense
  // instance-major rows the shim consumes.
  for (unsigned L = 0; L < NB; ++L) {
    Environment &E = *Envs[I0 + L];
    const StepBindings &B = Bind[I0 + L];
    for (size_t D = 0; D < NumClk; ++D)
      E.clockTicks(B.Clocks[D], Start, Count, &S.TickBuf[(D * K + L) * W]);
    for (size_t D = 0; D < NumIn; ++D)
      E.inputValues(B.Inputs[D], Start, Count, &S.InBuf[(D * K + L) * W]);
  }
  for (unsigned L = 0; L < NB; ++L)
    for (unsigned T = 0; T < Count; ++T) {
      const size_t R = static_cast<size_t>(L) * Count + T;
      for (size_t D = 0; D < NumClk; ++D)
        S.NTicks[R * NumClk + D] = S.TickBuf[(D * K + L) * W + T];
      for (size_t D = 0; D < NumIn; ++D)
        S.NIns[R * NumIn + D] = toNative(S.InBuf[(D * K + L) * W + T]);
    }

  // StateSoA stays canonical: pack it in, run, unpack it back. Per-lane
  // counters enter at zero and exit as this window's deltas, which fold
  // into the shard totals exactly like the interpreted sweep's.
  for (unsigned L = 0; L < NB; ++L) {
    for (size_t Slot = 0; Slot < NumState; ++Slot)
      S.NStates[static_cast<size_t>(L) * NumState + Slot] =
          toNative(StateSoA[Slot * NumInstances + I0 + L]);
    S.NGuards[L] = 0;
    S.NExecs[L] = 0;
  }

  Native->runFleet(S.NScratch.data(), S.NStates.data(), S.NGuards.data(),
                   S.NExecs.data(), S.NTicks.data(), S.NIns.data(),
                   S.NOutP.data(), S.NOutV.data(), NB, Count);

  for (unsigned L = 0; L < NB; ++L) {
    for (size_t Slot = 0; Slot < NumState; ++Slot)
      StateSoA[Slot * NumInstances + I0 + L] =
          fromNative(S.NStates[static_cast<size_t>(L) * NumState + Slot],
                     CS.StateInit[Slot].Kind);
    S.GuardTests += S.NGuards[L];
    S.Executed += S.NExecs[L];
  }

  // Reconstruct tagged output values by declared type into the shard's
  // flush buffers, then flush per lane in instance order — byte-identical
  // event sequencing to the interpreted window.
  for (unsigned L = 0; L < NB; ++L) {
    for (unsigned T = 0; T < Count; ++T) {
      const size_t R = (static_cast<size_t>(L) * Count + T) * NumOut;
      const size_t At = (static_cast<size_t>(L) * W + T) * NumOut;
      for (size_t Pos = 0; Pos < NumOut; ++Pos) {
        S.OutPresent[At + Pos] = S.NOutP[R + Pos];
        S.OutVals[At + Pos] =
            S.NOutP[R + Pos]
                ? fromNative(S.NOutV[R + Pos],
                             CS.Outputs[CS.OutputFlushOrder[Pos]].Type)
                : Value();
      }
    }
    Envs[I0 + L]->exchangeOutputs(Start, Count, static_cast<unsigned>(NumOut),
                                  &FlushIds[(I0 + L) * NumOut],
                                  &S.OutPresent[L * W * NumOut],
                                  &S.OutVals[L * W * NumOut]);
  }
}

void FleetExecutor::execShard(Shard &S, const std::vector<Environment *> &Envs,
                              unsigned Start, unsigned Count) {
  for (unsigned I0 = S.FirstInstance; I0 < S.EndInstance; I0 += K)
    execBlock(S, Envs, I0, std::min(K, S.EndInstance - I0), Start, Count);
}

void FleetExecutor::stepN(const std::vector<Environment *> &Envs,
                          unsigned Start, unsigned Count) {
  if (Count == 0 || NumInstances == 0)
    return;
  assert(Envs.size() >= NumInstances && "one environment per instance");

  // Cold path: (re)bind any instance whose environment changed. Serial on
  // purpose — binding interns names and allocates; the swept hot loop
  // below does neither.
  bool Rebind = false;
  for (unsigned Inst = 0; Inst < NumInstances && !Rebind; ++Inst)
    Rebind = Envs[Inst]->identity() != BoundIds[Inst];
  if (Rebind)
    bind(Envs);
  reserveWindow(Count);

  if (Shards.size() == 1 || Cfg.Threads <= 1) {
    // Inline execution: the allocation-free path (thread spawn allocates).
    for (Shard &S : Shards)
      execShard(S, Envs, Start, Count);
  } else {
    std::vector<std::thread> Workers;
    Workers.reserve(Shards.size());
    for (Shard &S : Shards)
      Workers.emplace_back(
          [this, &S, &Envs, Start, Count] { execShard(S, Envs, Start, Count); });
    for (std::thread &T : Workers)
      T.join();
  }

  // Deterministic counter aggregation: shard totals fold in shard order.
  for (Shard &S : Shards) {
    GuardTests += S.GuardTests;
    Executed += S.Executed;
    S.GuardTests = 0;
    S.Executed = 0;
  }
}

void FleetExecutor::stepLanes(const std::vector<Environment *> &Envs,
                              unsigned First, unsigned Num, unsigned Start,
                              unsigned Count) {
  if (Count == 0 || Num == 0)
    return;
  assert(First + Num <= NumInstances && "lane range out of bounds");
  assert(Envs.size() >= First + Num && "environments cover the lane range");

  for (unsigned Inst = First; Inst < First + Num; ++Inst)
    if (Envs[Inst]->identity() != BoundIds[Inst])
      bindInstance(Inst, *Envs[Inst]);

  if (Count > WindowCap)
    WindowCap = Count;
  ensureShardCapacity(LaneShard);

  // The range need not be lane-block aligned: execBlock handles any
  // (I0, NB<=K), and per-lane semantics (state, counters, flush order)
  // are independent of how lanes group into blocks.
  for (unsigned I0 = First; I0 < First + Num; I0 += K)
    execBlock(LaneShard, Envs, I0, std::min(K, First + Num - I0), Start,
              Count);

  GuardTests += LaneShard.GuardTests;
  Executed += LaneShard.Executed;
  LaneShard.GuardTests = 0;
  LaneShard.Executed = 0;
}

void FleetExecutor::run(const std::vector<Environment *> &Envs,
                        unsigned Count) {
  stepN(Envs, 0, Count);
}

void FleetExecutor::runBatched(const std::vector<Environment *> &Envs,
                               unsigned Count, unsigned Window) {
  if (Window == 0)
    Window = 1;
  for (unsigned Start = 0; Start < Count; Start += Window)
    stepN(Envs, Start, std::min(Window, Count - Start));
}
