//===--- LinkedExecutor.cpp -----------------------------------------------===//

#include "interp/LinkedExecutor.h"

#include <algorithm>

using namespace sigc;

LinkedExecutor::LinkedExecutor(const LinkedSystem &Sys)
    : Sys(Sys), Fused(Sys.Fused), Exec(Fused) {
  // Watch the consumer/producer clock-slot pair of every dynamic
  // channel: batched windows record their presence per instant, and a
  // negative slot (a clock the unit proved null) records as absent —
  // the same convention the unbatched comparison uses.
  std::vector<int> Watch;
  Watch.reserve(Sys.DynChecks.size() * 2);
  for (const LinkedSystem::DynCheck &C : Sys.DynChecks) {
    Watch.push_back(C.ConsumerSlot);
    Watch.push_back(C.ProducerSlot);
  }
  Exec.setWatchSlots(std::move(Watch));
}

void LinkedExecutor::reset() {
  Exec.reset();
  Error.clear();
}

std::string
LinkedExecutor::mismatchMessage(const LinkedSystem::DynCheck &Check,
                                unsigned Instant, bool ProducerPresent,
                                bool ConsumerPresent) const {
  const LinkChannel &Ch = Sys.Channels[Check.Channel];
  return "instant " + std::to_string(Instant) + ": channel '" + Ch.Name +
         "' clock mismatch — producer '" + Sys.Units[Ch.Producer].Name +
         (ProducerPresent ? "' emitted" : "' was silent") +
         " while consumer '" + Sys.Units[Ch.Consumer].Name +
         (ConsumerPresent ? "' expected a value" : "' expected silence");
}

bool LinkedExecutor::step(Environment &Env, unsigned Instant) {
  if (!Error.empty())
    return false;
  Exec.step(Env, Instant);
  // The fused instant is complete (outputs emitted); now both sides of
  // every dynamic channel must agree on presence.
  for (const LinkedSystem::DynCheck &C : Sys.DynChecks) {
    bool ConsumerPresent =
        C.ConsumerSlot >= 0 && Exec.clockPresent(C.ConsumerSlot);
    bool ProducerPresent =
        C.ProducerSlot >= 0 && Exec.clockPresent(C.ProducerSlot);
    if (ConsumerPresent != ProducerPresent) {
      Error = mismatchMessage(C, Instant, ProducerPresent, ConsumerPresent);
      return false;
    }
  }
  return true;
}

bool LinkedExecutor::stepN(Environment &Env, unsigned Start, unsigned Count) {
  if (Count == 0)
    return true;
  if (!Error.empty())
    return false;
  if (Sys.DynChecks.empty()) {
    Exec.stepN(Env, Start, Count);
    return true;
  }

  // Run the window against the buffering wrapper, then replay the
  // dynamic checks from the watch recording before forwarding outputs.
  BatchEnv.Outer = &Env;
  BatchEnv.Buf.clear();
  Exec.stepN(BatchEnv, Start, Count);

  // The first violation an unbatched run would hit: ordered by instant,
  // then by check order within the instant.
  bool HaveErr = false;
  unsigned ErrInstant = 0;
  for (unsigned I = 0; I < Count && !HaveErr; ++I) {
    for (size_t K = 0; K < Sys.DynChecks.size(); ++K) {
      const LinkedSystem::DynCheck &C = Sys.DynChecks[K];
      bool ConsumerPresent = Exec.watchPresence(2 * K, I);
      bool ProducerPresent = Exec.watchPresence(2 * K + 1, I);
      if (ConsumerPresent == ProducerPresent)
        continue;
      HaveErr = true;
      ErrInstant = Start + I;
      Error =
          mismatchMessage(C, ErrInstant, ProducerPresent, ConsumerPresent);
      break;
    }
  }

  // Forward exactly what an unbatched run forwards: every instant up to
  // and including the erroring one (a completed fused step has already
  // emitted its outputs when the check fires).
  for (const BufferEnv::Rec &R : BatchEnv.Buf) {
    if (HaveErr && R.Instant > ErrInstant)
      break; // Buf is instant-major.
    Env.writeOutput(R.Id, R.Instant, R.V);
  }
  BatchEnv.Buf.clear();
  return !HaveErr;
}

bool LinkedExecutor::run(Environment &Env, unsigned Count) {
  for (unsigned I = 0; I < Count; ++I)
    if (!step(Env, I))
      return false;
  return true;
}

bool LinkedExecutor::runBatched(Environment &Env, unsigned Count,
                                unsigned BatchSize) {
  if (BatchSize == 0)
    BatchSize = 1;
  for (unsigned Start = 0; Start < Count; Start += BatchSize)
    if (!stepN(Env, Start, std::min(BatchSize, Count - Start)))
      return false;
  return true;
}
