//===--- LinkedExecutor.cpp -----------------------------------------------===//

#include "interp/LinkedExecutor.h"

using namespace sigc;

bool LinkedExecutor::UnitEnv::clockTick(const std::string &ClockName,
                                        unsigned Instant) {
  auto It = BoundTicks.find(ClockName);
  if (It != BoundTicks.end())
    return It->second;
  return Outer->clockTick(ClockName, Instant);
}

Value LinkedExecutor::UnitEnv::inputValue(const std::string &SignalName,
                                          TypeKind Type, unsigned Instant) {
  auto It = BoundInputs.find(SignalName);
  if (It == BoundInputs.end())
    return Outer->inputValue(SignalName, Type, Instant);
  if (!It->second.Present) {
    // The consumer computed "present" for a channel whose producer did
    // not emit: a dynamic clock-interface violation. The step must still
    // finish (step() reports the error afterwards), so hand back a
    // type-correct zero — a default Value would trip asReal()'s
    // non-numeric assertion further down the step.
    if (Error && Error->empty())
      *Error = "instant " + std::to_string(Instant) + ": consumer reads '" +
               SignalName + "' but its producer emitted nothing";
    switch (Type) {
    case TypeKind::Boolean:
      return Value::makeBool(false);
    case TypeKind::Event:
      return Value::makeEvent();
    case TypeKind::Real:
      return Value::makeReal(0.0);
    case TypeKind::Integer:
    case TypeKind::Unknown:
      break;
    }
    return Value::makeInt(0);
  }
  return It->second.Val;
}

void LinkedExecutor::UnitEnv::writeOutput(const std::string &SignalName,
                                          unsigned Instant, const Value &V) {
  Produced[SignalName] = {true, V};
  auto It = ExternalOutput.find(SignalName);
  if (It != ExternalOutput.end() && It->second)
    Outer->writeOutput(SignalName, Instant, V);
}

LinkedExecutor::LinkedExecutor(const LinkedSystem &Sys) : Sys(Sys) {
  States.reserve(Sys.Units.size());
  for (const LinkUnit &U : Sys.Units)
    States.emplace_back(*U.Comp->Kernel, U.Comp->Step);
  for (unsigned U = 0; U < Sys.Units.size(); ++U) {
    UnitEnv &E = States[U].Env;
    E.Error = &Error;
    for (const auto &SO : Sys.Units[U].Comp->Step.Outputs)
      E.ExternalOutput[SO.Name] = false;
    for (const LinkedExternal &Ext : Sys.ExternalOutputs)
      if (Ext.Unit == U)
        E.ExternalOutput[Ext.Name] = true;
  }
  for (const LinkChannel &Ch : Sys.Channels)
    States[Ch.Consumer].InChannels.push_back(&Ch);
}

void LinkedExecutor::reset() {
  for (UnitState &S : States)
    S.Exec.reset();
  Error.clear();
}

bool LinkedExecutor::step(Environment &Env, unsigned Instant) {
  if (!Error.empty())
    return false;
  for (UnitState &S : States) {
    S.Env.Outer = &Env;
    S.Env.BoundTicks.clear();
    S.Env.BoundInputs.clear();
    S.Env.Produced.clear();
  }

  for (unsigned U : Sys.Order) {
    UnitState &S = States[U];
    const StepProgram &Step = Sys.Units[U].Comp->Step;

    // Wire this unit's channels from its producers' recorded outputs.
    for (const LinkChannel *Ch : S.InChannels) {
      const UnitEnv &ProdEnv = States[Ch->Producer].Env;
      auto It = ProdEnv.Produced.find(Ch->Name);
      ChannelValue CV;
      if (It != ProdEnv.Produced.end())
        CV = It->second;
      S.Env.BoundInputs[Ch->Name] = CV;
      if (Ch->ConsumerClockInput >= 0)
        S.Env.BoundTicks[Step.ClockInputs[Ch->ConsumerClockInput].Name] =
            CV.Present;
    }

    S.Exec.step(S.Env, Instant, ExecMode::Nested);

    // Dynamic check for channels whose clock the consumer derives: both
    // sides must agree on presence this instant.
    for (const LinkChannel *Ch : S.InChannels) {
      if (Ch->ConsumerClockInput >= 0)
        continue;
      int Slot = Step.SignalClockSlot[Ch->ConsumerSig];
      bool ConsumerPresent = Slot >= 0 && S.Exec.clockPresent(Slot);
      bool ProducerPresent = S.Env.BoundInputs[Ch->Name].Present;
      if (ConsumerPresent != ProducerPresent && Error.empty())
        Error = "instant " + std::to_string(Instant) + ": channel '" +
                Ch->Name + "' clock mismatch — producer '" +
                Sys.Units[Ch->Producer].Name +
                (ProducerPresent ? "' emitted" : "' was silent") +
                " while consumer '" + Sys.Units[Ch->Consumer].Name +
                (ConsumerPresent ? "' expected a value"
                                 : "' expected silence");
    }
    if (!Error.empty())
      return false;
  }
  return true;
}

bool LinkedExecutor::run(Environment &Env, unsigned Count) {
  for (unsigned I = 0; I < Count; ++I)
    if (!step(Env, I))
      return false;
  return true;
}

uint64_t LinkedExecutor::guardTests() const {
  uint64_t Total = 0;
  for (const UnitState &S : States)
    Total += S.Exec.guardTests();
  return Total;
}
