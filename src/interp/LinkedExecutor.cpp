//===--- LinkedExecutor.cpp -----------------------------------------------===//

#include "interp/LinkedExecutor.h"

#include <algorithm>
#include <cassert>

using namespace sigc;

bool LinkedExecutor::UnitEnv::clockTick(EnvClockId Clock, unsigned Instant) {
  int Ch = ClockChannel[Clock];
  if (Ch >= 0)
    return ChanPresent[Ch] != 0;
  return Outer->clockTick(OuterClock[Clock], Instant);
}

Value LinkedExecutor::UnitEnv::inputValue(EnvInputId Input,
                                          unsigned Instant) {
  int Ch = InputChannel[Input];
  if (Ch < 0)
    return Outer->inputValue(OuterInput[Input], Instant);
  if (!ChanPresent[Ch]) {
    // The consumer computed "present" for a channel whose producer did
    // not emit: a dynamic clock-interface violation. The step must still
    // finish (step() reports the error afterwards), so hand back a
    // type-correct zero — a default Value would trip asReal()'s
    // non-numeric assertion further down the step.
    if (Error && Error->empty())
      *Error = "instant " + std::to_string(Instant) + ": consumer reads '" +
               inputBindingName(Input) + "' but its producer emitted nothing";
    switch (inputBindingType(Input)) {
    case TypeKind::Boolean:
      return Value::makeBool(false);
    case TypeKind::Event:
      return Value::makeEvent();
    case TypeKind::Real:
      return Value::makeReal(0.0);
    case TypeKind::Integer:
    case TypeKind::Unknown:
      break;
    }
    return Value::makeInt(0);
  }
  return ChanVal[Ch];
}

void LinkedExecutor::UnitEnv::writeOutput(EnvOutputId Output,
                                          unsigned Instant, const Value &V) {
  ProducedPresent[Output] = 1;
  ProducedVal[Output] = V;
  if (ExternalOut[Output] != InvalidEnvId)
    Outer->writeOutput(ExternalOut[Output], Instant, V);
}

LinkedExecutor::LinkedExecutor(const LinkedSystem &Sys) : Sys(Sys) {
  States.reserve(Sys.Units.size());
  for (unsigned U = 0; U < Sys.Units.size(); ++U)
    States.push_back(std::make_unique<UnitState>());
  for (unsigned U = 0; U < Sys.Units.size(); ++U) {
    UnitState &S = *States[U];
    S.Compiled =
        CompiledStep::build(*Sys.Units[U].Comp->Kernel, Sys.Units[U].Comp->Step);
    S.Exec = std::make_unique<VmExecutor>(S.Compiled);
    S.Env.Error = &Error;
    // Resolve the unit's whole binding against its adapter environment
    // up front; every routing table below is indexed by those ids.
    S.Exec->bind(S.Env);
    S.Env.ClockChannel.assign(S.Env.numClockBindings(), -1);
    S.Env.InputChannel.assign(S.Env.numInputBindings(), -1);
    S.Env.ExternalOut.assign(S.Env.numOutputBindings(), InvalidEnvId);
    S.Env.OuterClock.assign(S.Env.numClockBindings(), InvalidEnvId);
    S.Env.OuterInput.assign(S.Env.numInputBindings(), InvalidEnvId);
    S.Env.ProducedPresent.assign(S.Env.numOutputBindings(), 0);
    S.Env.ProducedVal.assign(S.Env.numOutputBindings(), Value());
  }

  // Channel wiring, by the linker's pre-resolved descriptor indices: the
  // producer-side output id and consumer-side input/clock ids come
  // straight out of each executor's binding arrays — no name matching.
  for (const LinkChannel &Ch : Sys.Channels) {
    UnitState &Cons = *States[Ch.Consumer];
    UnitState &Prod = *States[Ch.Producer];
    int ChanIdx = static_cast<int>(Cons.InChannels.size());
    InChannel IC;
    IC.Ch = &Ch;
    IC.Producer = Ch.Producer;
    IC.ProducerOut = Prod.Exec->bindings().Outputs[Ch.ProducerOutput];
    Cons.InChannels.push_back(IC);

    EnvInputId InId = Cons.Exec->bindings().Inputs[Ch.ConsumerInput];
    Cons.Env.InputChannel[InId] = ChanIdx;
    if (Ch.ConsumerClockInput >= 0) {
      EnvClockId ClkId = Cons.Exec->bindings().Clocks[Ch.ConsumerClockInput];
      Cons.Env.ClockChannel[ClkId] = ChanIdx;
    }
  }
  for (auto &SP : States) {
    SP->Env.ChanPresent.assign(SP->InChannels.size(), 0);
    SP->Env.ChanVal.assign(SP->InChannels.size(), Value());
  }
}

void LinkedExecutor::bindOuter(Environment &Outer) {
  for (auto &SP : States) {
    UnitState &S = *SP;
    S.Env.Outer = &Outer;
    for (EnvClockId Id = 0; Id < S.Env.numClockBindings(); ++Id)
      if (S.Env.ClockChannel[Id] < 0)
        S.Env.OuterClock[Id] = Outer.resolveClock(S.Env.clockBindingName(Id));
    for (EnvInputId Id = 0; Id < S.Env.numInputBindings(); ++Id)
      if (S.Env.InputChannel[Id] < 0)
        S.Env.OuterInput[Id] = Outer.resolveInput(
            S.Env.inputBindingName(Id), S.Env.inputBindingType(Id));
    std::fill(S.Env.ExternalOut.begin(), S.Env.ExternalOut.end(),
              InvalidEnvId);
  }
  for (const LinkedExternal &Ext : Sys.ExternalOutputs) {
    UnitState &S = *States[Ext.Unit];
    // The external's descriptor index in the unit's Outputs table.
    const auto &Outs = S.Compiled.Outputs;
    for (size_t OI = 0; OI < Outs.size(); ++OI)
      if (Outs[OI].Sig == Ext.Sig) {
        EnvOutputId Id = S.Exec->bindings().Outputs[OI];
        S.Env.ExternalOut[Id] =
            Outer.resolveOutput(Ext.Name, Outs[OI].Type);
      }
  }
  BoundOuterIdentity = Outer.identity();
}

void LinkedExecutor::reset() {
  for (auto &SP : States)
    SP->Exec->reset();
  Error.clear();
}

bool LinkedExecutor::step(Environment &Env, unsigned Instant) {
  if (!Error.empty())
    return false;
  if (Env.identity() != BoundOuterIdentity)
    bindOuter(Env);

  for (auto &SP : States)
    std::fill(SP->Env.ProducedPresent.begin(), SP->Env.ProducedPresent.end(),
              char(0));

  for (unsigned U : Sys.Order) {
    UnitState &S = *States[U];

    // Wire this unit's channels from its producers' recorded outputs.
    for (size_t C = 0; C < S.InChannels.size(); ++C) {
      const InChannel &IC = S.InChannels[C];
      const UnitEnv &ProdEnv = States[IC.Producer]->Env;
      S.Env.ChanPresent[C] = ProdEnv.ProducedPresent[IC.ProducerOut];
      S.Env.ChanVal[C] = ProdEnv.ProducedVal[IC.ProducerOut];
    }

    S.Exec->step(S.Env, Instant);

    // Dynamic check for channels whose clock the consumer derives: both
    // sides must agree on presence this instant.
    for (size_t C = 0; C < S.InChannels.size(); ++C) {
      const LinkChannel *Ch = S.InChannels[C].Ch;
      if (Ch->ConsumerClockInput >= 0)
        continue;
      int Slot = S.Compiled.SignalClockSlot[Ch->ConsumerSig];
      bool ConsumerPresent = Slot >= 0 && S.Exec->clockPresent(Slot);
      bool ProducerPresent = S.Env.ChanPresent[C] != 0;
      if (ConsumerPresent != ProducerPresent && Error.empty())
        Error = "instant " + std::to_string(Instant) + ": channel '" +
                Ch->Name + "' clock mismatch — producer '" +
                Sys.Units[Ch->Producer].Name +
                (ProducerPresent ? "' emitted" : "' was silent") +
                " while consumer '" + Sys.Units[Ch->Consumer].Name +
                (ConsumerPresent ? "' expected a value"
                                 : "' expected silence");
    }
    if (!Error.empty())
      return false;
  }
  return true;
}

bool LinkedExecutor::run(Environment &Env, unsigned Count) {
  for (unsigned I = 0; I < Count; ++I)
    if (!step(Env, I))
      return false;
  return true;
}

uint64_t LinkedExecutor::guardTests() const {
  uint64_t Total = 0;
  for (const auto &SP : States)
    Total += SP->Exec->guardTests();
  return Total;
}

uint64_t LinkedExecutor::executed() const {
  uint64_t Total = 0;
  for (const auto &SP : States)
    Total += SP->Exec->executed();
  return Total;
}
