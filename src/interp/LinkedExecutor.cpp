//===--- LinkedExecutor.cpp -----------------------------------------------===//

#include "interp/LinkedExecutor.h"

#include <algorithm>
#include <cassert>

using namespace sigc;

namespace {

/// Type-correct zero for a silent channel read — a default Value would
/// trip asReal()'s non-numeric assertion further down the step.
Value typedZero(TypeKind K) {
  switch (K) {
  case TypeKind::Boolean:
    return Value::makeBool(false);
  case TypeKind::Event:
    return Value::makeEvent();
  case TypeKind::Real:
    return Value::makeReal(0.0);
  case TypeKind::Integer:
  case TypeKind::Unknown:
    break;
  }
  return Value::makeInt(0);
}

} // namespace

bool LinkedExecutor::UnitEnv::clockTick(EnvClockId Clock, unsigned Instant) {
  int Ch = ClockChannel[Clock];
  if (Ch >= 0)
    return ChanPresent[static_cast<size_t>(Ch) * Cap +
                       (Instant - BatchStart)] != 0;
  return Outer->clockTick(OuterClock[Clock], Instant);
}

Value LinkedExecutor::UnitEnv::inputValue(EnvInputId Input,
                                          unsigned Instant) {
  int Ch = InputChannel[Input];
  if (Ch < 0)
    return Outer->inputValue(OuterInput[Input], Instant);
  size_t At = static_cast<size_t>(Ch) * Cap + (Instant - BatchStart);
  if (!ChanPresent[At]) {
    // The consumer computed "present" for a channel whose producer did
    // not emit: a dynamic clock-interface violation. The step must still
    // finish (step() reports the error afterwards), so hand back a
    // type-correct zero.
    if (Error && Error->empty())
      *Error = "instant " + std::to_string(Instant) + ": consumer reads '" +
               inputBindingName(Input) + "' but its producer emitted nothing";
    return typedZero(inputBindingType(Input));
  }
  return ChanVal[At];
}

void LinkedExecutor::UnitEnv::writeOutput(EnvOutputId Output,
                                          unsigned Instant, const Value &V) {
  size_t At = static_cast<size_t>(Output) * Cap + (Instant - BatchStart);
  ProducedPresent[At] = 1;
  ProducedVal[At] = V;
  // Batched windows defer external forwarding to the ordered flush.
  if (!BatchMode && ExternalOut[Output] != InvalidEnvId)
    Outer->writeOutput(ExternalOut[Output], Instant, V);
}

void LinkedExecutor::UnitEnv::clockTicks(EnvClockId Clock, unsigned Start,
                                         unsigned Count, unsigned char *Out) {
  int Ch = ClockChannel[Clock];
  if (Ch < 0) {
    Outer->clockTicks(OuterClock[Clock], Start, Count, Out);
    return;
  }
  const unsigned char *Row =
      &ChanPresent[static_cast<size_t>(Ch) * Cap + (Start - BatchStart)];
  std::copy(Row, Row + Count, Out);
}

void LinkedExecutor::UnitEnv::inputValues(EnvInputId Input, unsigned Start,
                                          unsigned Count, Value *Out) {
  int Ch = InputChannel[Input];
  if (Ch < 0) {
    Outer->inputValues(OuterInput[Input], Start, Count, Out);
    return;
  }
  // A bulk prefetch reads the whole window regardless of presence, so a
  // silent instant is not an error here — a real mismatch (the consumer
  // present while the producer is silent) is caught per instant by the
  // dynamic watch check after the unit's window runs.
  size_t Base = static_cast<size_t>(Ch) * Cap + (Start - BatchStart);
  TypeKind K = inputBindingType(Input);
  for (unsigned I = 0; I < Count; ++I)
    Out[I] = ChanPresent[Base + I] ? ChanVal[Base + I] : typedZero(K);
}

LinkedExecutor::LinkedExecutor(const LinkedSystem &Sys) : Sys(Sys) {
  States.reserve(Sys.Units.size());
  for (unsigned U = 0; U < Sys.Units.size(); ++U)
    States.push_back(std::make_unique<UnitState>());
  for (unsigned U = 0; U < Sys.Units.size(); ++U) {
    UnitState &S = *States[U];
    S.Compiled = Sys.Units[U].Comp->Compiled;
    S.Exec = std::make_unique<VmExecutor>(S.Compiled);
    S.Env.Error = &Error;
    // Resolve the unit's whole binding against its adapter environment
    // up front; every routing table below is indexed by those ids.
    S.Exec->bind(S.Env);
    S.Env.ClockChannel.assign(S.Env.numClockBindings(), -1);
    S.Env.InputChannel.assign(S.Env.numInputBindings(), -1);
    S.Env.ExternalOut.assign(S.Env.numOutputBindings(), InvalidEnvId);
    S.Env.OuterClock.assign(S.Env.numClockBindings(), InvalidEnvId);
    S.Env.OuterInput.assign(S.Env.numInputBindings(), InvalidEnvId);
    S.Env.ProducedPresent.assign(S.Env.numOutputBindings(), 0);
    S.Env.ProducedVal.assign(S.Env.numOutputBindings(), Value());
    // The per-instant emission order of the unit's outputs, as env ids:
    // the batched external flush replays exactly this order.
    for (int32_t D : S.Compiled.OutputFlushOrder)
      S.FlushEnvIds.push_back(S.Exec->bindings().Outputs[D]);
  }

  // Channel wiring, by the linker's pre-resolved descriptor indices: the
  // producer-side output id and consumer-side input/clock ids come
  // straight out of each executor's binding arrays — no name matching.
  for (const LinkChannel &Ch : Sys.Channels) {
    UnitState &Cons = *States[Ch.Consumer];
    UnitState &Prod = *States[Ch.Producer];
    int ChanIdx = static_cast<int>(Cons.InChannels.size());
    InChannel IC;
    IC.Ch = &Ch;
    IC.Producer = Ch.Producer;
    IC.ProducerOut = Prod.Exec->bindings().Outputs[Ch.ProducerOutput];
    Cons.InChannels.push_back(IC);

    EnvInputId InId = Cons.Exec->bindings().Inputs[Ch.ConsumerInput];
    Cons.Env.InputChannel[InId] = ChanIdx;
    if (Ch.ConsumerClockInput >= 0) {
      EnvClockId ClkId = Cons.Exec->bindings().Clocks[Ch.ConsumerClockInput];
      Cons.Env.ClockChannel[ClkId] = ChanIdx;
    } else {
      Cons.DynChannels.push_back(ChanIdx);
    }
  }
  for (auto &SP : States) {
    SP->Env.ChanPresent.assign(SP->InChannels.size(), 0);
    SP->Env.ChanVal.assign(SP->InChannels.size(), Value());
    // Watch slots mirror DynChannels: the consumer-side presence the
    // dynamic check needs, recorded per instant by batched windows.
    std::vector<int> Watch;
    for (int C : SP->DynChannels)
      Watch.push_back(
          SP->Compiled.SignalClockSlot[SP->InChannels[C].Ch->ConsumerSig]);
    SP->Exec->setWatchSlots(std::move(Watch));
  }
}

void LinkedExecutor::bindOuter(Environment &Outer) {
  for (auto &SP : States) {
    UnitState &S = *SP;
    S.Env.Outer = &Outer;
    for (EnvClockId Id = 0; Id < S.Env.numClockBindings(); ++Id)
      if (S.Env.ClockChannel[Id] < 0)
        S.Env.OuterClock[Id] = Outer.resolveClock(S.Env.clockBindingName(Id));
    for (EnvInputId Id = 0; Id < S.Env.numInputBindings(); ++Id)
      if (S.Env.InputChannel[Id] < 0)
        S.Env.OuterInput[Id] = Outer.resolveInput(
            S.Env.inputBindingName(Id), S.Env.inputBindingType(Id));
    std::fill(S.Env.ExternalOut.begin(), S.Env.ExternalOut.end(),
              InvalidEnvId);
  }
  for (const LinkedExternal &Ext : Sys.ExternalOutputs) {
    UnitState &S = *States[Ext.Unit];
    // The external's descriptor index in the unit's Outputs table.
    const auto &Outs = S.Compiled.Outputs;
    for (size_t OI = 0; OI < Outs.size(); ++OI)
      if (Outs[OI].Sig == Ext.Sig) {
        EnvOutputId Id = S.Exec->bindings().Outputs[OI];
        S.Env.ExternalOut[Id] =
            Outer.resolveOutput(Ext.Name, Outs[OI].Type);
      }
  }
  BoundOuterIdentity = Outer.identity();
}

void LinkedExecutor::reserveBatch(unsigned MaxCount) {
  if (MaxCount <= BatchCap)
    return;
  BatchCap = MaxCount;
  for (auto &SP : States) {
    UnitState &S = *SP;
    S.Env.Cap = BatchCap;
    S.Env.ChanPresent.assign(S.InChannels.size() *
                                 static_cast<size_t>(BatchCap),
                             0);
    S.Env.ChanVal.assign(S.InChannels.size() * static_cast<size_t>(BatchCap),
                         Value());
    S.Env.ProducedPresent.assign(S.Env.numOutputBindings() *
                                     static_cast<size_t>(BatchCap),
                                 0);
    S.Env.ProducedVal.assign(S.Env.numOutputBindings() *
                                 static_cast<size_t>(BatchCap),
                             Value());
    S.Exec->reserveBatch(BatchCap);
  }
}

void LinkedExecutor::reset() {
  for (auto &SP : States)
    SP->Exec->reset();
  Error.clear();
}

bool LinkedExecutor::step(Environment &Env, unsigned Instant) {
  if (!Error.empty())
    return false;
  if (Env.identity() != BoundOuterIdentity)
    bindOuter(Env);

  for (auto &SP : States) {
    std::fill(SP->Env.ProducedPresent.begin(), SP->Env.ProducedPresent.end(),
              static_cast<unsigned char>(0));
    SP->Env.BatchStart = Instant; // window of one, offset 0
  }

  for (unsigned U : Sys.Order) {
    UnitState &S = *States[U];

    // Wire this unit's channels from its producers' recorded outputs.
    const unsigned Cap = S.Env.Cap;
    for (size_t C = 0; C < S.InChannels.size(); ++C) {
      const InChannel &IC = S.InChannels[C];
      const UnitEnv &ProdEnv = States[IC.Producer]->Env;
      size_t From = static_cast<size_t>(IC.ProducerOut) * ProdEnv.Cap;
      S.Env.ChanPresent[C * Cap] = ProdEnv.ProducedPresent[From];
      S.Env.ChanVal[C * Cap] = ProdEnv.ProducedVal[From];
    }

    S.Exec->step(S.Env, Instant);

    // Dynamic check for channels whose clock the consumer derives: both
    // sides must agree on presence this instant.
    for (int C : S.DynChannels) {
      const LinkChannel *Ch = S.InChannels[C].Ch;
      int Slot = S.Compiled.SignalClockSlot[Ch->ConsumerSig];
      bool ConsumerPresent = Slot >= 0 && S.Exec->clockPresent(Slot);
      bool ProducerPresent = S.Env.ChanPresent[C * Cap] != 0;
      if (ConsumerPresent != ProducerPresent && Error.empty())
        Error = "instant " + std::to_string(Instant) + ": channel '" +
                Ch->Name + "' clock mismatch — producer '" +
                Sys.Units[Ch->Producer].Name +
                (ProducerPresent ? "' emitted" : "' was silent") +
                " while consumer '" + Sys.Units[Ch->Consumer].Name +
                (ConsumerPresent ? "' expected a value"
                                 : "' expected silence");
    }
    if (!Error.empty())
      return false;
  }
  return true;
}

bool LinkedExecutor::stepN(Environment &Env, unsigned Start, unsigned Count) {
  if (Count == 0)
    return true;
  if (!Error.empty())
    return false;
  if (Env.identity() != BoundOuterIdentity)
    bindOuter(Env);
  reserveBatch(Count);
  const unsigned Cap = BatchCap;

  for (auto &SP : States) {
    std::fill(SP->Env.ProducedPresent.begin(), SP->Env.ProducedPresent.end(),
              static_cast<unsigned char>(0));
    SP->Env.BatchStart = Start;
    SP->Env.BatchMode = true;
  }

  // The first violation an unbatched run would hit: ordered by instant,
  // then by unit position within the instant.
  bool HaveErr = false;
  unsigned ErrInstant = 0;
  size_t ErrPos = 0;
  std::string ErrMsg;
  auto candidate = [&](unsigned Instant, size_t Pos, std::string Msg) {
    if (!HaveErr || Instant < ErrInstant ||
        (Instant == ErrInstant && Pos < ErrPos)) {
      HaveErr = true;
      ErrInstant = Instant;
      ErrPos = Pos;
      ErrMsg = std::move(Msg);
    }
  };

  for (size_t Pos = 0; Pos < Sys.Order.size(); ++Pos) {
    UnitState &S = *States[Sys.Order[Pos]];

    // Wire whole channel rows from the producers' windows (producers run
    // earlier in the feedback-free order, so their windows are complete).
    for (size_t C = 0; C < S.InChannels.size(); ++C) {
      const InChannel &IC = S.InChannels[C];
      const UnitEnv &ProdEnv = States[IC.Producer]->Env;
      size_t From = static_cast<size_t>(IC.ProducerOut) * Cap;
      size_t To = C * static_cast<size_t>(Cap);
      std::copy(ProdEnv.ProducedPresent.begin() + From,
                ProdEnv.ProducedPresent.begin() + From + Count,
                S.Env.ChanPresent.begin() + To);
      std::copy(ProdEnv.ProducedVal.begin() + From,
                ProdEnv.ProducedVal.begin() + From + Count,
                S.Env.ChanVal.begin() + To);
    }

    S.Exec->stepN(S.Env, Start, Count);

    // Replay the dynamic checks per instant from the watch recording.
    for (size_t W = 0; W < S.DynChannels.size(); ++W) {
      int C = S.DynChannels[W];
      const LinkChannel *Ch = S.InChannels[C].Ch;
      for (unsigned I = 0; I < Count; ++I) {
        bool ConsumerPresent = S.Exec->watchPresence(W, I);
        bool ProducerPresent =
            S.Env.ChanPresent[C * static_cast<size_t>(Cap) + I] != 0;
        if (ConsumerPresent == ProducerPresent)
          continue;
        candidate(Start + I, Pos,
                  "instant " + std::to_string(Start + I) + ": channel '" +
                      Ch->Name + "' clock mismatch — producer '" +
                      Sys.Units[Ch->Producer].Name +
                      (ProducerPresent ? "' emitted" : "' was silent") +
                      " while consumer '" + Sys.Units[Ch->Consumer].Name +
                      (ConsumerPresent ? "' expected a value"
                                       : "' expected silence"));
        break;
      }
    }
  }

  for (auto &SP : States)
    SP->Env.BatchMode = false;

  // Flush external outputs exactly as an unbatched run forwards them —
  // instants outer, units in link order, each unit's outputs in emission
  // order — cut at the error point: an unbatched run completes the
  // erroring unit's step (its outputs are forwarded) and then stops.
  unsigned FlushCount = HaveErr ? ErrInstant - Start + 1 : Count;
  for (unsigned I = 0; I < FlushCount; ++I) {
    for (size_t Pos = 0; Pos < Sys.Order.size(); ++Pos) {
      if (HaveErr && Start + I == ErrInstant && Pos > ErrPos)
        break;
      UnitState &S = *States[Sys.Order[Pos]];
      for (EnvOutputId Id : S.FlushEnvIds) {
        size_t At = static_cast<size_t>(Id) * Cap + I;
        if (S.Env.ProducedPresent[At] &&
            S.Env.ExternalOut[Id] != InvalidEnvId)
          Env.writeOutput(S.Env.ExternalOut[Id], Start + I,
                          S.Env.ProducedVal[At]);
      }
    }
  }

  if (HaveErr) {
    if (Error.empty())
      Error = std::move(ErrMsg);
    return false;
  }
  return true;
}

bool LinkedExecutor::run(Environment &Env, unsigned Count) {
  for (unsigned I = 0; I < Count; ++I)
    if (!step(Env, I))
      return false;
  return true;
}

bool LinkedExecutor::runBatched(Environment &Env, unsigned Count,
                                unsigned BatchSize) {
  if (BatchSize == 0)
    BatchSize = 1;
  for (unsigned Start = 0; Start < Count; Start += BatchSize)
    if (!stepN(Env, Start, std::min(BatchSize, Count - Start)))
      return false;
  return true;
}

uint64_t LinkedExecutor::guardTests() const {
  uint64_t Total = 0;
  for (const auto &SP : States)
    Total += SP->Exec->guardTests();
  return Total;
}

uint64_t LinkedExecutor::executed() const {
  uint64_t Total = 0;
  for (const auto &SP : States)
    Total += SP->Exec->executed();
  return Total;
}
