//===--- Environment.h - Reactive environment interface ---------*- C++-*-===//
///
/// \file
/// The execution environment of a compiled process. Per instant the
/// runtime asks the environment for
///   * the tick of every *free clock* exhibited by the clock calculus (the
///     paper's point in Section 3.3: free variables are inputs the
///     environment must provide),
///   * the value of an input signal — queried only when the runtime has
///     established the signal is present,
/// and hands back the outputs produced in that instant.
///
/// Two ready-made environments cover testing and benchmarking:
/// RandomEnvironment (deterministic PRNG) and ScriptedEnvironment (exact
/// per-instant values). Both record outputs for comparison.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_ENVIRONMENT_H
#define SIGNALC_INTERP_ENVIRONMENT_H

#include "ast/Value.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sigc {

/// One recorded output occurrence.
struct OutputEvent {
  unsigned Instant = 0;
  std::string Signal;
  Value Val;

  bool operator==(const OutputEvent &RHS) const {
    return Instant == RHS.Instant && Signal == RHS.Signal && Val == RHS.Val;
  }
};

/// Renders a sequence of output events, one per line (testing helper).
std::string formatEvents(const std::vector<OutputEvent> &Events);

/// Abstract environment; implementations decide presence and values.
class Environment {
public:
  virtual ~Environment();

  /// \returns true if free clock \p ClockName ticks at \p Instant.
  virtual bool clockTick(const std::string &ClockName, unsigned Instant) = 0;

  /// \returns the value of input \p SignalName at \p Instant; called only
  /// when the signal is present.
  virtual Value inputValue(const std::string &SignalName, TypeKind Type,
                           unsigned Instant) = 0;

  /// Receives output \p V of \p SignalName at \p Instant.
  virtual void writeOutput(const std::string &SignalName, unsigned Instant,
                           const Value &V);

  const std::vector<OutputEvent> &outputs() const { return Outputs; }
  void clearOutputs() { Outputs.clear(); }

private:
  std::vector<OutputEvent> Outputs;
};

/// Deterministic pseudo-random environment: every free clock ticks with
/// probability TickPermille/1000, values are drawn uniformly.
///
/// Each answer is a pure function of (seed, name, instant) — *not* of the
/// query order — so the fixpoint interpreter and the step executor, which
/// interrogate the environment in different orders, observe the same
/// trace. This is what makes differential testing sound.
class RandomEnvironment : public Environment {
public:
  explicit RandomEnvironment(uint64_t Seed, unsigned TickPermille = 800)
      : Seed(Seed), TickPermille(TickPermille) {}

  bool clockTick(const std::string &ClockName, unsigned Instant) override;
  Value inputValue(const std::string &SignalName, TypeKind Type,
                   unsigned Instant) override;

  void setIntRange(int64_t Lo, int64_t Hi) {
    IntLo = Lo;
    IntHi = Hi;
  }

private:
  uint64_t draw(const std::string &Name, unsigned Instant) const;

  uint64_t Seed;
  unsigned TickPermille;
  int64_t IntLo = 0, IntHi = 99;
};

/// Scripted environment: exact presence and values per instant.
class ScriptedEnvironment : public Environment {
public:
  /// Makes \p ClockName tick at \p Instant.
  void tick(const std::string &ClockName, unsigned Instant) {
    Ticks[{ClockName, Instant}] = true;
  }
  /// Makes every queried clock tick at every instant below \p Limit.
  void tickAlways(bool On = true) { AlwaysTick = On; }

  /// Sets the value of \p SignalName at \p Instant.
  void set(const std::string &SignalName, unsigned Instant, Value V) {
    Values[{SignalName, Instant}] = V;
  }

  bool clockTick(const std::string &ClockName, unsigned Instant) override;
  Value inputValue(const std::string &SignalName, TypeKind Type,
                   unsigned Instant) override;

private:
  std::map<std::pair<std::string, unsigned>, bool> Ticks;
  std::map<std::pair<std::string, unsigned>, Value> Values;
  bool AlwaysTick = false;
};

} // namespace sigc

#endif // SIGNALC_INTERP_ENVIRONMENT_H
