//===--- Environment.h - Reactive environment interface ---------*- C++-*-===//
///
/// \file
/// The execution environment of a compiled process. Per instant the
/// runtime asks the environment for
///   * the tick of every *free clock* exhibited by the clock calculus (the
///     paper's point in Section 3.3: free variables are inputs the
///     environment must provide),
///   * the value of an input signal — queried only when the runtime has
///     established the signal is present,
/// and hands back the outputs produced in that instant.
///
/// The interface is split into a cold *binding* phase and a hot *query*
/// phase. An executor resolves every name it will ever ask about exactly
/// once (resolveClock/resolveInput/resolveOutput return dense ids), and
/// the per-instant queries carry only those ids — no string hashing,
/// comparison or construction on the reactive step. A thin name-based
/// adapter (the string overloads of clockTick/inputValue/writeOutput)
/// survives for tests, examples and the CLI; it resolves on every call
/// and is deliberately not for hot loops.
///
/// Two ready-made environments cover testing and benchmarking:
/// RandomEnvironment (deterministic PRNG) and ScriptedEnvironment (exact
/// per-instant values). Both record outputs for comparison.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_INTERP_ENVIRONMENT_H
#define SIGNALC_INTERP_ENVIRONMENT_H

#include "ast/Value.h"

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace sigc {

/// Dense per-environment ids handed out by the binding phase. Each id
/// space is independent; ids are only meaningful for the environment that
/// issued them.
using EnvClockId = uint32_t;
using EnvInputId = uint32_t;
using EnvOutputId = uint32_t;
constexpr uint32_t InvalidEnvId = 0xFFFFFFFFu;

/// One recorded output occurrence.
struct OutputEvent {
  unsigned Instant = 0;
  std::string Signal;
  Value Val;

  bool operator==(const OutputEvent &RHS) const {
    return Instant == RHS.Instant && Signal == RHS.Signal && Val == RHS.Val;
  }
};

/// Renders a sequence of output events, one per line (testing helper).
std::string formatEvents(const std::vector<OutputEvent> &Events);

/// The environment-side half of an executor's binding: the EnvIds of a
/// step program's descriptor tables, index-aligned with them.
struct StepBindings {
  std::vector<EnvClockId> Clocks;   ///< Per clock-input descriptor.
  std::vector<EnvInputId> Inputs;   ///< Per input descriptor.
  std::vector<EnvOutputId> Outputs; ///< Per output descriptor.
};

/// Resolves the ids of step descriptor tables against \p Env — the one
/// binding routine shared by every executor (StepProgram and
/// CompiledStep carry the same descriptor vector types).
template <typename ClockDescs, typename IODescs>
StepBindings resolveBindings(class Environment &Env, const ClockDescs &Clocks,
                             const IODescs &Inputs, const IODescs &Outputs);

/// Abstract environment; implementations decide presence and values.
/// Reference semantics: executors hold onto one and key their binding
/// caches on its identity(), so environments are neither copyable nor
/// movable.
class Environment {
public:
  Environment() = default;
  Environment(const Environment &) = delete;
  Environment &operator=(const Environment &) = delete;
  virtual ~Environment();

  //===--- Binding (cold path, once per executor-environment pair) --------===//

  /// Registers free clock \p Name; equal names share one id.
  virtual EnvClockId resolveClock(std::string_view Name);
  /// Registers input signal \p Name of \p Type; equal names share one id.
  virtual EnvInputId resolveInput(std::string_view Name, TypeKind Type);
  /// Registers output signal \p Name of \p Type; equal names share one id.
  virtual EnvOutputId resolveOutput(std::string_view Name, TypeKind Type);

  //===--- Hot path (per instant, no strings) -----------------------------===//

  /// \returns true if the bound free clock ticks at \p Instant.
  virtual bool clockTick(EnvClockId Clock, unsigned Instant) = 0;

  /// \returns the value of the bound input at \p Instant; called only
  /// when the signal is present.
  virtual Value inputValue(EnvInputId Input, unsigned Instant) = 0;

  /// Receives output \p V of the bound output at \p Instant. The default
  /// implementation records the event under the bound name.
  virtual void writeOutput(EnvOutputId Output, unsigned Instant,
                           const Value &V);

  //===--- Bulk exchange (hot path, once per batch) -----------------------===//
  //
  // Batched executors cross the virtual environment boundary once per
  // descriptor per batch instead of once per query per instant. The
  // defaults delegate to the per-instant virtuals, so every environment
  // is batchable; RandomEnvironment overrides them with straight loops.
  // Bulk input fetches are unconditional over the batch window — an
  // environment whose answers are pure functions of (binding, instant),
  // which the differential-testing contract already requires, observes
  // no difference.

  /// Fills Out[0..Count) with the ticks of \p Clock at instants
  /// Start..Start+Count.
  virtual void clockTicks(EnvClockId Clock, unsigned Start, unsigned Count,
                          unsigned char *Out);

  /// Fills Out[0..Count) with the values of \p Input at instants
  /// Start..Start+Count.
  virtual void inputValues(EnvInputId Input, unsigned Start, unsigned Count,
                           Value *Out);

  /// Delivers a whole batch of outputs in one crossing. \p Present and
  /// \p Vals are row-major [instant][output] over \p NumOutputs outputs
  /// whose ids are \p Ids, listed in the executor's per-instant emission
  /// order; the default replays them through writeOutput() instant by
  /// instant, reproducing exactly the event sequence an unbatched run
  /// records.
  virtual void exchangeOutputs(unsigned Start, unsigned Count,
                               unsigned NumOutputs, const EnvOutputId *Ids,
                               const unsigned char *Present,
                               const Value *Vals);

  //===--- Name-based adapter (tests, CLI, harness generation) ------------===//

  /// Resolves \p ClockName and queries it: convenience, not for hot loops.
  bool clockTick(const std::string &ClockName, unsigned Instant) {
    return clockTick(resolveClock(ClockName), Instant);
  }
  /// Resolves \p SignalName and queries it: convenience, not for hot loops.
  Value inputValue(const std::string &SignalName, TypeKind Type,
                   unsigned Instant) {
    return inputValue(resolveInput(SignalName, Type), Instant);
  }
  /// Resolves \p SignalName and writes it: convenience, not for hot loops.
  void writeOutput(const std::string &SignalName, unsigned Instant,
                   const Value &V) {
    writeOutput(resolveOutput(SignalName, V.Kind), Instant, V);
  }

  //===--- Binding-table introspection (adapters, executors) --------------===//

  unsigned numClockBindings() const {
    return static_cast<unsigned>(ClockB.size());
  }
  unsigned numInputBindings() const {
    return static_cast<unsigned>(InputB.size());
  }
  unsigned numOutputBindings() const {
    return static_cast<unsigned>(OutputB.size());
  }
  const std::string &clockBindingName(EnvClockId Id) const {
    return ClockB[Id].Name;
  }
  const std::string &inputBindingName(EnvInputId Id) const {
    return InputB[Id].Name;
  }
  TypeKind inputBindingType(EnvInputId Id) const { return InputB[Id].Type; }
  const std::string &outputBindingName(EnvOutputId Id) const {
    return OutputB[Id].Name;
  }
  TypeKind outputBindingType(EnvOutputId Id) const { return OutputB[Id].Type; }

  const std::vector<OutputEvent> &outputs() const { return Outputs; }
  void clearOutputs() { Outputs.clear(); }

  /// Unique per-instance identity. Executors key their lazy binding
  /// caches on this, not on the address: a new environment constructed
  /// where a destroyed one lived must not look like the bound one.
  uint64_t identity() const { return Identity; }

private:
  static uint64_t nextIdentity();

  const uint64_t Identity = nextIdentity();

  struct NamedBinding {
    std::string Name;
    TypeKind Type = TypeKind::Unknown;
  };

  /// Interns \p Name into \p Table, deduplicating by spelling.
  static uint32_t internBinding(std::vector<NamedBinding> &Table,
                                std::unordered_map<std::string, uint32_t> &Idx,
                                std::string_view Name, TypeKind Type);

  std::vector<NamedBinding> ClockB, InputB, OutputB;
  std::unordered_map<std::string, uint32_t> ClockIdx, InputIdx, OutputIdx;
  std::vector<OutputEvent> Outputs;
};

template <typename ClockDescs, typename IODescs>
StepBindings resolveBindings(Environment &Env, const ClockDescs &Clocks,
                             const IODescs &Inputs, const IODescs &Outputs) {
  StepBindings B;
  B.Clocks.reserve(Clocks.size());
  for (const auto &CI : Clocks)
    B.Clocks.push_back(Env.resolveClock(CI.Name));
  B.Inputs.reserve(Inputs.size());
  for (const auto &SI : Inputs)
    B.Inputs.push_back(Env.resolveInput(SI.Name, SI.Type));
  B.Outputs.reserve(Outputs.size());
  for (const auto &SO : Outputs)
    B.Outputs.push_back(Env.resolveOutput(SO.Name, SO.Type));
  return B;
}

/// Deterministic pseudo-random environment: every free clock ticks with
/// probability TickPermille/1000, values are drawn uniformly.
///
/// Each answer is a pure function of (seed, name, instant) — *not* of the
/// query order or the binding order — so the fixpoint interpreter and the
/// step executors, which interrogate the environment in different orders
/// and bind different id spaces, observe the same trace. This is what
/// makes differential testing sound. The per-name hash is computed once
/// at binding time; the hot path is pure integer mixing.
class RandomEnvironment : public Environment {
public:
  using Environment::clockTick;
  using Environment::inputValue;
  using Environment::writeOutput;

  explicit RandomEnvironment(uint64_t Seed, unsigned TickPermille = 800)
      : Seed(Seed), TickPermille(TickPermille) {}

  EnvClockId resolveClock(std::string_view Name) override;
  EnvInputId resolveInput(std::string_view Name, TypeKind Type) override;

  bool clockTick(EnvClockId Clock, unsigned Instant) override;
  Value inputValue(EnvInputId Input, unsigned Instant) override;

  /// Bulk overrides: one virtual dispatch, then pure integer mixing.
  void clockTicks(EnvClockId Clock, unsigned Start, unsigned Count,
                  unsigned char *Out) override;
  void inputValues(EnvInputId Input, unsigned Start, unsigned Count,
                   Value *Out) override;

  void setIntRange(int64_t Lo, int64_t Hi) {
    IntLo = Lo;
    IntHi = Hi;
  }

private:
  /// splitmix64 over the precomputed per-name seed and the instant.
  static uint64_t draw(uint64_t NameSeed, unsigned Instant);
  /// The per-name seed: seed ^ hash(prefix + name) * phi, fixed at bind.
  uint64_t nameSeed(const char *Prefix, std::string_view Name) const;

  uint64_t Seed;
  unsigned TickPermille;
  int64_t IntLo = 0, IntHi = 99;
  std::vector<uint64_t> ClockSeed; ///< Indexed by EnvClockId.
  std::vector<uint64_t> InputSeed; ///< Indexed by EnvInputId.
};

/// Scripted environment: exact presence and values per instant. The
/// scripting API is name-keyed (tests read best that way); queries go
/// through the bound name, so this environment is not allocation-free —
/// it is for tests, not benchmarks.
class ScriptedEnvironment : public Environment {
public:
  using Environment::clockTick;
  using Environment::inputValue;
  using Environment::writeOutput;

  /// Makes \p ClockName tick at \p Instant.
  void tick(const std::string &ClockName, unsigned Instant) {
    Ticks[{ClockName, Instant}] = true;
  }
  /// Makes every queried clock tick at every instant.
  void tickAlways(bool On = true) { AlwaysTick = On; }

  /// Sets the value of \p SignalName at \p Instant.
  void set(const std::string &SignalName, unsigned Instant, Value V) {
    Values[{SignalName, Instant}] = V;
  }

  bool clockTick(EnvClockId Clock, unsigned Instant) override;
  Value inputValue(EnvInputId Input, unsigned Instant) override;

private:
  std::map<std::pair<std::string, unsigned>, bool> Ticks;
  std::map<std::pair<std::string, unsigned>, Value> Values;
  bool AlwaysTick = false;
};

} // namespace sigc

#endif // SIGNALC_INTERP_ENVIRONMENT_H
