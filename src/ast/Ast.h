//===--- Ast.h - SIGNAL abstract syntax -------------------------*- C++-*-===//
///
/// \file
/// AST for the implemented SIGNAL subset: the kernel of the paper's
/// Section 2.2 (functional expressions, delay "$", "when", "default",
/// composition "|") plus the derived operators of Section 2.3 ("event",
/// unary "when", "synchro", "cell", clock equality "^=").
///
/// Nodes are allocated in an AstContext arena and referenced by raw
/// pointers; the arena owns everything. Dynamic dispatch uses an explicit
/// Kind enum (no RTTI, per the coding standard).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_AST_AST_H
#define SIGNALC_AST_AST_H

#include "ast/Value.h"
#include "support/SourceLoc.h"
#include "support/StringInterner.h"

#include <cassert>
#include <memory>
#include <vector>

namespace sigc {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

/// Discriminator for Expr subclasses.
enum class ExprKind {
  Name,      ///< Reference to a signal.
  Const,     ///< Literal constant.
  Unary,     ///< not E, -E
  Binary,    ///< E1 op E2 for pointwise functions f(X1..Xn)
  Delay,     ///< X $ 1 init v      (kernel: reference to the past)
  When,      ///< E when C          (kernel: downsampling)
  Default,   ///< E default F       (kernel: deterministic merge)
  Event,     ///< event X           (derived: the clock of X as a signal)
  UnaryWhen, ///< when C            (derived: C when C)
  Cell,      ///< X cell C init v   (derived: memorizing latch)
};

/// Operators for UnaryExpr.
enum class UnaryOp { Not, Neg };

/// Operators for BinaryExpr (the pointwise instantaneous functions).
enum class BinaryOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  And,
  Or,
  Xor,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
};

/// \returns the SIGNAL spelling of \p Op ("+", "and", "/=", ...).
const char *unaryOpName(UnaryOp Op);
const char *binaryOpName(BinaryOp Op);
/// \returns true if \p Op always yields a boolean.
bool isPredicateOp(BinaryOp Op);
/// \returns true if \p Op requires boolean operands.
bool isLogicalOp(BinaryOp Op);

/// Base class of all expression nodes.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  /// The type assigned by sema; Unknown before type checking.
  TypeKind type() const { return Ty; }
  void setType(TypeKind T) { Ty = T; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  ~Expr() = default;

private:
  ExprKind Kind;
  SourceLoc Loc;
  TypeKind Ty = TypeKind::Unknown;
};

/// Reference to a named signal.
class NameExpr : public Expr {
public:
  NameExpr(Symbol Name, SourceLoc Loc) : Expr(ExprKind::Name, Loc), Name(Name) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Name; }

  Symbol name() const { return Name; }

private:
  Symbol Name;
};

/// Literal constant.
class ConstExpr : public Expr {
public:
  ConstExpr(Value V, SourceLoc Loc) : Expr(ExprKind::Const, Loc), Val(V) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Const; }

  const Value &value() const { return Val; }

private:
  Value Val;
};

/// Unary pointwise function.
class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, Expr *Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(Operand) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Unary; }

  UnaryOp op() const { return Op; }
  Expr *operand() const { return Operand; }

private:
  UnaryOp Op;
  Expr *Operand;
};

/// Binary pointwise function; all operands share one clock (Table 1 row 1).
class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(LHS), RHS(RHS) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

  BinaryOp op() const { return Op; }
  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

private:
  BinaryOp Op;
  Expr *LHS;
  Expr *RHS;
};

/// "X $ 1 init v": the previous value of X, with initial value v.
/// Kernel restricts the depth to 1; deeper delays are desugared by sema.
class DelayExpr : public Expr {
public:
  DelayExpr(Expr *Operand, unsigned Depth, Value Init, SourceLoc Loc)
      : Expr(ExprKind::Delay, Loc), Operand(Operand), Depth(Depth),
        Init(Init) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Delay; }

  Expr *operand() const { return Operand; }
  unsigned depth() const { return Depth; }
  const Value &init() const { return Init; }

private:
  Expr *Operand;
  unsigned Depth;
  Value Init;
};

/// "E when C": downsampling (Table 1 row 4).
class WhenExpr : public Expr {
public:
  WhenExpr(Expr *Val, Expr *Cond, SourceLoc Loc)
      : Expr(ExprKind::When, Loc), Val(Val), Cond(Cond) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::When; }

  Expr *value() const { return Val; }
  Expr *condition() const { return Cond; }

private:
  Expr *Val;
  Expr *Cond;
};

/// "E default F": deterministic merge with priority to E (Table 1 row 3).
class DefaultExpr : public Expr {
public:
  DefaultExpr(Expr *Preferred, Expr *Alternative, SourceLoc Loc)
      : Expr(ExprKind::Default, Loc), Preferred(Preferred),
        Alternative(Alternative) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Default; }

  Expr *preferred() const { return Preferred; }
  Expr *alternative() const { return Alternative; }

private:
  Expr *Preferred;
  Expr *Alternative;
};

/// "event X": the clock of X reified as an always-true signal.
/// Derived: event X = (X = X).
class EventExpr : public Expr {
public:
  EventExpr(Expr *Operand, SourceLoc Loc)
      : Expr(ExprKind::Event, Loc), Operand(Operand) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Event; }

  Expr *operand() const { return Operand; }

private:
  Expr *Operand;
};

/// Unary "when C": derived, equals "C when C"; identified with the clock [C].
class UnaryWhenExpr : public Expr {
public:
  UnaryWhenExpr(Expr *Cond, SourceLoc Loc)
      : Expr(ExprKind::UnaryWhen, Loc), Cond(Cond) {}
  static bool classof(const Expr *E) {
    return E->kind() == ExprKind::UnaryWhen;
  }

  Expr *condition() const { return Cond; }

private:
  Expr *Cond;
};

/// "X cell C init v": X's value when X is present, otherwise the last value,
/// at the clock x̂ ∨ [C]. Derived operator, desugared by sema.
class CellExpr : public Expr {
public:
  CellExpr(Expr *Val, Expr *Cond, Value Init, SourceLoc Loc)
      : Expr(ExprKind::Cell, Loc), Val(Val), Cond(Cond), Init(Init) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Cell; }

  Expr *value() const { return Val; }
  Expr *condition() const { return Cond; }
  const Value &init() const { return Init; }

private:
  Expr *Val;
  Expr *Cond;
  Value Init;
};

//===----------------------------------------------------------------------===//
// Processes
//===----------------------------------------------------------------------===//

/// Discriminator for Process subclasses.
enum class ProcessKind {
  Equation,    ///< X := E
  Composition, ///< (| P1 | P2 | ... |)
  Synchro,     ///< synchro {E1, ..., En}: clock equality constraint
  ClockEq,     ///< E1 ^= E2: binary clock equality constraint
};

/// Base class of process (statement) nodes.
class Process {
public:
  ProcessKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Process(ProcessKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  ~Process() = default;

private:
  ProcessKind Kind;
  SourceLoc Loc;
};

/// A defining equation "X := E".
class EquationProc : public Process {
public:
  EquationProc(Symbol Target, Expr *RHS, SourceLoc Loc)
      : Process(ProcessKind::Equation, Loc), Target(Target), RHS(RHS) {}
  static bool classof(const Process *P) {
    return P->kind() == ProcessKind::Equation;
  }

  Symbol target() const { return Target; }
  Expr *rhs() const { return RHS; }

private:
  Symbol Target;
  Expr *RHS;
};

/// Parallel composition "(| P1 | ... | Pn |)": union of equation systems.
class CompositionProc : public Process {
public:
  CompositionProc(std::vector<Process *> Children, SourceLoc Loc)
      : Process(ProcessKind::Composition, Loc), Children(std::move(Children)) {}
  static bool classof(const Process *P) {
    return P->kind() == ProcessKind::Composition;
  }

  const std::vector<Process *> &children() const { return Children; }

private:
  std::vector<Process *> Children;
};

/// "synchro {E1, ..., En}": constrains all operand clocks to be equal.
class SynchroProc : public Process {
public:
  SynchroProc(std::vector<Expr *> Operands, SourceLoc Loc)
      : Process(ProcessKind::Synchro, Loc), Operands(std::move(Operands)) {}
  static bool classof(const Process *P) {
    return P->kind() == ProcessKind::Synchro;
  }

  const std::vector<Expr *> &operands() const { return Operands; }

private:
  std::vector<Expr *> Operands;
};

/// "E1 ^= E2": clock equality between two expressions.
class ClockEqProc : public Process {
public:
  ClockEqProc(Expr *LHS, Expr *RHS, SourceLoc Loc)
      : Process(ProcessKind::ClockEq, Loc), LHS(LHS), RHS(RHS) {}
  static bool classof(const Process *P) {
    return P->kind() == ProcessKind::ClockEq;
  }

  Expr *lhs() const { return LHS; }
  Expr *rhs() const { return RHS; }

private:
  Expr *LHS;
  Expr *RHS;
};

//===----------------------------------------------------------------------===//
// Declarations and programs
//===----------------------------------------------------------------------===//

/// Signal role in the process interface.
enum class SignalDir { Input, Output, Local };

/// Declaration of one signal.
struct SignalDecl {
  Symbol Name;
  TypeKind Type = TypeKind::Unknown;
  SignalDir Dir = SignalDir::Local;
  SourceLoc Loc;
};

/// A complete "process NAME = (? inputs ! outputs) body where locals end".
struct ProcessDecl {
  Symbol Name;
  std::vector<SignalDecl> Signals;
  Process *Body = nullptr;
  SourceLoc Loc;

  /// \returns the declaration of \p S, or nullptr.
  const SignalDecl *findSignal(Symbol S) const {
    for (const SignalDecl &D : Signals)
      if (D.Name == S)
        return &D;
    return nullptr;
  }
};

/// A parsed source file: one or more process declarations.
struct Program {
  std::vector<ProcessDecl *> Processes;

  const ProcessDecl *findProcess(Symbol Name) const {
    for (const ProcessDecl *P : Processes)
      if (P->Name == Name)
        return P;
    return nullptr;
  }
};

//===----------------------------------------------------------------------===//
// Arena and cast helpers
//===----------------------------------------------------------------------===//

/// Owns every AST node of one compilation.
class AstContext {
public:
  template <typename T, typename... Args> T *create(Args &&...As) {
    auto Node = std::make_unique<Holder<T>>(std::forward<Args>(As)...);
    T *Ptr = &Node->Object;
    Allocations.push_back(std::move(Node));
    return Ptr;
  }

  StringInterner &interner() { return Interner; }
  const StringInterner &interner() const { return Interner; }

private:
  struct HolderBase {
    virtual ~HolderBase() = default;
  };
  template <typename T> struct Holder final : HolderBase {
    template <typename... Args>
    explicit Holder(Args &&...As) : Object(std::forward<Args>(As)...) {}
    T Object;
  };

  std::vector<std::unique_ptr<HolderBase>> Allocations;
  StringInterner Interner;
};

/// Minimal LLVM-style cast helpers driven by classof().
template <typename To, typename From> bool isa(const From *Node) {
  assert(Node && "isa<> on null node");
  return To::classof(Node);
}

template <typename To, typename From> To *cast(From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible type");
  return static_cast<To *>(Node);
}

template <typename To, typename From> const To *cast(const From *Node) {
  assert(isa<To>(Node) && "cast<> to incompatible type");
  return static_cast<const To *>(Node);
}

template <typename To, typename From> To *dyn_cast(From *Node) {
  return isa<To>(Node) ? static_cast<To *>(Node) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Node) {
  return isa<To>(Node) ? static_cast<const To *>(Node) : nullptr;
}

} // namespace sigc

#endif // SIGNALC_AST_AST_H
