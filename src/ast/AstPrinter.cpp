//===--- AstPrinter.cpp ---------------------------------------------------===//

#include "ast/AstPrinter.h"

using namespace sigc;

namespace {

std::string nameOf(Symbol S, const StringInterner &Names) {
  std::string_view Sp = Names.spelling(S);
  return Sp.empty() ? std::string("<anon>") : std::string(Sp);
}

} // namespace

std::string sigc::printExpr(const Expr *E, const StringInterner &Names) {
  switch (E->kind()) {
  case ExprKind::Name:
    return nameOf(cast<NameExpr>(E)->name(), Names);
  case ExprKind::Const:
    return cast<ConstExpr>(E)->value().str();
  case ExprKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    std::string Op = unaryOpName(U->op());
    std::string Sep = (U->op() == UnaryOp::Not) ? " " : "";
    return "(" + Op + Sep + printExpr(U->operand(), Names) + ")";
  }
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return "(" + printExpr(B->lhs(), Names) + " " + binaryOpName(B->op()) +
           " " + printExpr(B->rhs(), Names) + ")";
  }
  case ExprKind::Delay: {
    const auto *D = cast<DelayExpr>(E);
    return "(" + printExpr(D->operand(), Names) + " $ " +
           std::to_string(D->depth()) + " init " + D->init().str() + ")";
  }
  case ExprKind::When: {
    const auto *W = cast<WhenExpr>(E);
    return "(" + printExpr(W->value(), Names) + " when " +
           printExpr(W->condition(), Names) + ")";
  }
  case ExprKind::Default: {
    const auto *D = cast<DefaultExpr>(E);
    return "(" + printExpr(D->preferred(), Names) + " default " +
           printExpr(D->alternative(), Names) + ")";
  }
  case ExprKind::Event:
    return "(event " + printExpr(cast<EventExpr>(E)->operand(), Names) + ")";
  case ExprKind::UnaryWhen:
    return "(when " + printExpr(cast<UnaryWhenExpr>(E)->condition(), Names) +
           ")";
  case ExprKind::Cell: {
    const auto *C = cast<CellExpr>(E);
    return "(" + printExpr(C->value(), Names) + " cell " +
           printExpr(C->condition(), Names) + " init " + C->init().str() + ")";
  }
  }
  return "<bad-expr>";
}

std::string sigc::printProcess(const Process *P, const StringInterner &Names,
                               unsigned Indent) {
  std::string Pad(Indent, ' ');
  switch (P->kind()) {
  case ProcessKind::Equation: {
    const auto *E = cast<EquationProc>(P);
    return Pad + nameOf(E->target(), Names) + " := " +
           printExpr(E->rhs(), Names);
  }
  case ProcessKind::Composition: {
    const auto *C = cast<CompositionProc>(P);
    std::string Out = Pad + "(|\n";
    bool First = true;
    for (const Process *Child : C->children()) {
      if (!First)
        Out += "\n";
      First = false;
      Out += printProcess(Child, Names, Indent + 2);
    }
    Out += "\n" + Pad + "|)";
    return Out;
  }
  case ProcessKind::Synchro: {
    const auto *S = cast<SynchroProc>(P);
    std::string Out = Pad + "synchro {";
    for (unsigned I = 0; I < S->operands().size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(S->operands()[I], Names);
    }
    Out += "}";
    return Out;
  }
  case ProcessKind::ClockEq: {
    const auto *C = cast<ClockEqProc>(P);
    return Pad + printExpr(C->lhs(), Names) + " ^= " +
           printExpr(C->rhs(), Names);
  }
  }
  return "<bad-process>";
}

std::string sigc::printProcessDecl(const ProcessDecl &D,
                                   const StringInterner &Names) {
  std::string Out = "process " + nameOf(D.Name, Names) + " =\n  ( ";
  auto emitGroup = [&](SignalDir Dir, const char *Marker) {
    bool Any = false;
    for (const SignalDecl &S : D.Signals) {
      if (S.Dir != Dir)
        continue;
      if (!Any)
        Out += std::string(Marker) + " ";
      Any = true;
      Out += std::string(typeName(S.Type)) + " " + nameOf(S.Name, Names) +
             "; ";
    }
  };
  emitGroup(SignalDir::Input, "?");
  emitGroup(SignalDir::Output, "!");
  Out += ")\n";
  if (D.Body)
    Out += printProcess(D.Body, Names, 2);

  bool AnyLocal = false;
  for (const SignalDecl &S : D.Signals) {
    if (S.Dir != SignalDir::Local)
      continue;
    if (!AnyLocal)
      Out += "\n  where\n";
    AnyLocal = true;
    Out += "    " + std::string(typeName(S.Type)) + " " +
           nameOf(S.Name, Names) + ";\n";
  }
  if (AnyLocal)
    Out += "  end";
  Out += ";\n";
  return Out;
}
