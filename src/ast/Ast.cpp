//===--- Ast.cpp - AST enum spellings and Value ops -----------------------===//

#include "ast/Ast.h"

#include <cassert>
#include <cmath>

using namespace sigc;

const char *sigc::typeName(TypeKind K) {
  switch (K) {
  case TypeKind::Unknown:
    return "<unknown>";
  case TypeKind::Event:
    return "event";
  case TypeKind::Boolean:
    return "boolean";
  case TypeKind::Integer:
    return "integer";
  case TypeKind::Real:
    return "real";
  }
  return "<bad>";
}

const char *sigc::unaryOpName(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Not:
    return "not";
  case UnaryOp::Neg:
    return "-";
  }
  return "<bad>";
}

const char *sigc::binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Mod:
    return "mod";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  case BinaryOp::Xor:
    return "xor";
  case BinaryOp::Eq:
    return "=";
  case BinaryOp::Ne:
    return "/=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  }
  return "<bad>";
}

bool sigc::isPredicateOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Eq:
  case BinaryOp::Ne:
  case BinaryOp::Lt:
  case BinaryOp::Le:
  case BinaryOp::Gt:
  case BinaryOp::Ge:
    return true;
  default:
    return false;
  }
}

bool sigc::isLogicalOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::And:
  case BinaryOp::Or:
  case BinaryOp::Xor:
    return true;
  default:
    return false;
  }
}

bool Value::asBool() const {
  assert(isBoolish() && "asBool() on non-boolean value");
  return Bool;
}

double Value::asReal() const {
  switch (Kind) {
  case TypeKind::Integer:
    return static_cast<double>(Int);
  case TypeKind::Real:
    return Real;
  default:
    assert(false && "asReal() on non-numeric value");
    return 0.0;
  }
}

bool Value::operator==(const Value &RHS) const {
  if (Kind != RHS.Kind) {
    // Allow numeric cross-kind comparison (integer vs real).
    if ((Kind == TypeKind::Integer || Kind == TypeKind::Real) &&
        (RHS.Kind == TypeKind::Integer || RHS.Kind == TypeKind::Real))
      return asReal() == RHS.asReal();
    return false;
  }
  switch (Kind) {
  case TypeKind::Unknown:
    return true;
  case TypeKind::Event:
    return true;
  case TypeKind::Boolean:
    return Bool == RHS.Bool;
  case TypeKind::Integer:
    return Int == RHS.Int;
  case TypeKind::Real:
    return Real == RHS.Real;
  }
  return false;
}

std::string Value::str() const {
  switch (Kind) {
  case TypeKind::Unknown:
    return "<?>";
  case TypeKind::Event:
    return "tick";
  case TypeKind::Boolean:
    return Bool ? "true" : "false";
  case TypeKind::Integer:
    return std::to_string(Int);
  case TypeKind::Real: {
    std::string S = std::to_string(Real);
    return S;
  }
  }
  return "<bad>";
}
