//===--- Value.h - Runtime/constant values ----------------------*- C++-*-===//
///
/// \file
/// A small tagged value used both for constants in the AST and for signal
/// values in the interpreter. SIGNAL's basic types in this implementation
/// are event, boolean, integer and real.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_AST_VALUE_H
#define SIGNALC_AST_VALUE_H

#include <cstdint>
#include <string>

namespace sigc {

/// The scalar types of the implemented SIGNAL subset.
enum class TypeKind {
  Unknown, ///< Not yet inferred.
  Event,   ///< Always-true boolean; identified with its own clock.
  Boolean,
  Integer,
  Real,
};

/// \returns the SIGNAL spelling of \p K ("boolean", "integer", ...).
const char *typeName(TypeKind K);

/// A constant or runtime scalar.
struct Value {
  TypeKind Kind = TypeKind::Unknown;
  bool Bool = false;
  int64_t Int = 0;
  double Real = 0.0;

  Value() = default;

  static Value makeBool(bool B) {
    Value V;
    V.Kind = TypeKind::Boolean;
    V.Bool = B;
    return V;
  }
  static Value makeEvent() {
    Value V;
    V.Kind = TypeKind::Event;
    V.Bool = true;
    return V;
  }
  static Value makeInt(int64_t I) {
    Value V;
    V.Kind = TypeKind::Integer;
    V.Int = I;
    return V;
  }
  static Value makeReal(double R) {
    Value V;
    V.Kind = TypeKind::Real;
    V.Real = R;
    return V;
  }

  bool isBoolish() const {
    return Kind == TypeKind::Boolean || Kind == TypeKind::Event;
  }

  /// Truthiness for boolean/event values; asserts on other kinds.
  bool asBool() const;
  /// Numeric view (integer widened to double for mixed arithmetic).
  double asReal() const;

  bool operator==(const Value &RHS) const;
  bool operator!=(const Value &RHS) const { return !(*this == RHS); }

  /// Renders the value as SIGNAL literal text.
  std::string str() const;
};

} // namespace sigc

#endif // SIGNALC_AST_VALUE_H
