//===--- AstPrinter.h - SIGNAL source rendering -----------------*- C++-*-===//
///
/// \file
/// Renders AST nodes back to SIGNAL source text, used by tests
/// (parse/print round trips), -dump-ast, and error messages.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_AST_ASTPRINTER_H
#define SIGNALC_AST_ASTPRINTER_H

#include "ast/Ast.h"

#include <string>

namespace sigc {

/// Renders \p E as SIGNAL concrete syntax (fully parenthesized where the
/// grammar is ambiguous).
std::string printExpr(const Expr *E, const StringInterner &Names);

/// Renders \p P, one equation per line, with "(| ... |)" for compositions.
std::string printProcess(const Process *P, const StringInterner &Names,
                         unsigned Indent = 0);

/// Renders a complete process declaration.
std::string printProcessDecl(const ProcessDecl &D, const StringInterner &Names);

} // namespace sigc

#endif // SIGNALC_AST_ASTPRINTER_H
