//===--- TraceFormat.cpp --------------------------------------------------===//

#include "io/TraceFormat.h"

#include <algorithm>
#include <cstring>

using namespace sigc;

//===----------------------------------------------------------------------===//
// Wire primitives
//===----------------------------------------------------------------------===//

namespace {

void putU16(std::vector<uint8_t> &Out, uint16_t V) {
  Out.push_back(static_cast<uint8_t>(V & 0xFF));
  Out.push_back(static_cast<uint8_t>(V >> 8));
}

void putU32(std::vector<uint8_t> &Out, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    Out.push_back(static_cast<uint8_t>((V >> (8 * I)) & 0xFF));
}

void putU64(std::vector<uint8_t> &Out, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    Out.push_back(static_cast<uint8_t>((V >> (8 * I)) & 0xFF));
}

uint16_t getU16(const uint8_t *P) {
  return static_cast<uint16_t>(P[0] | (P[1] << 8));
}

uint32_t getU32(const uint8_t *P) {
  return static_cast<uint32_t>(P[0]) | (static_cast<uint32_t>(P[1]) << 8) |
         (static_cast<uint32_t>(P[2]) << 16) |
         (static_cast<uint32_t>(P[3]) << 24);
}

uint64_t getU64(const uint8_t *P) {
  uint64_t V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  return V;
}

/// Bounds-checked sequential reader over a byte span. Every failure is a
/// Truncated error at the current stream offset, so callers distinguish
/// "need more bytes" from real corruption.
struct Cursor {
  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  uint64_t Base; ///< Stream offset of Data[0] (diagnostics).

  uint64_t offset() const { return Base + Pos; }
  bool need(size_t N, TraceError &Err, const char *What) {
    if (Len - Pos >= N)
      return true;
    Err = {TraceErrorKind::Truncated, Base + Len,
           std::string("stream ends inside ") + What};
    return false;
  }
  bool u16(uint16_t &V, TraceError &Err, const char *What) {
    if (!need(2, Err, What))
      return false;
    V = getU16(Data + Pos);
    Pos += 2;
    return true;
  }
  bool bytes(const uint8_t *&P, size_t N, TraceError &Err, const char *What) {
    if (!need(N, Err, What))
      return false;
    P = Data + Pos;
    Pos += N;
    return true;
  }
};

/// Bytes one descriptor's values occupy for \p N instants.
size_t valueBytes(TypeKind T, size_t N) {
  switch (T) {
  case TypeKind::Event:
    return 0;
  case TypeKind::Boolean:
    return (N + 7) / 8;
  default:
    return 8 * N;
  }
}

void packValue(std::vector<uint8_t> &Out, TypeKind T, const Value &V) {
  switch (T) {
  case TypeKind::Event:
    return;
  case TypeKind::Boolean:
    return; // Booleans are bit-packed by the caller.
  case TypeKind::Real: {
    uint64_t Bits = 0;
    static_assert(sizeof(double) == 8, "IEEE-754 binary64 expected");
    std::memcpy(&Bits, &V.Real, 8);
    putU64(Out, Bits);
    return;
  }
  default:
    putU64(Out, static_cast<uint64_t>(V.Int));
    return;
  }
}

Value unpackValue(TypeKind T, const uint8_t *P) {
  switch (T) {
  case TypeKind::Real: {
    uint64_t Bits = getU64(P);
    double D = 0.0;
    std::memcpy(&D, &Bits, 8);
    return Value::makeReal(D);
  }
  default:
    return Value::makeInt(static_cast<int64_t>(getU64(P)));
  }
}

/// Appends a presence bitmap built from \p Flags[0..N) (LSB-first).
void packBitmap(std::vector<uint8_t> &Out, const unsigned char *Flags,
                size_t N) {
  for (size_t Byte = 0; Byte * 8 < N; ++Byte) {
    uint8_t B = 0;
    for (size_t Bit = 0; Bit < 8 && Byte * 8 + Bit < N; ++Bit)
      if (Flags[Byte * 8 + Bit])
        B |= static_cast<uint8_t>(1u << Bit);
    Out.push_back(B);
  }
}

bool bitmapBit(const uint8_t *Bits, size_t I) {
  return (Bits[I / 8] >> (I % 8)) & 1;
}

} // namespace

uint64_t sigc::traceFnv64(const uint8_t *Data, size_t Len) {
  uint64_t H = 14695981039346656037ull;
  for (size_t I = 0; I < Len; ++I) {
    H ^= Data[I];
    H *= 1099511628211ull;
  }
  return H;
}

uint32_t sigc::traceFnv32(const uint8_t *Data, size_t Len) {
  uint32_t H = 2166136261u;
  for (size_t I = 0; I < Len; ++I) {
    H ^= Data[I];
    H *= 16777619u;
  }
  return H;
}

std::string TraceError::str() const {
  return "offset " + std::to_string(Offset) + ": " + Message;
}

//===----------------------------------------------------------------------===//
// TraceSpec
//===----------------------------------------------------------------------===//

TraceSpec TraceSpec::fromStep(const CompiledStep &CS, std::string ProcName,
                              unsigned FrameInstants) {
  TraceSpec S;
  S.ProcName = std::move(ProcName);
  S.FrameInstants = FrameInstants ? FrameInstants : 1;
  for (const auto &CI : CS.ClockInputs)
    S.Clocks.push_back(CI.Name);
  for (const auto &SI : CS.Inputs)
    S.Inputs.push_back({SI.Name, SI.Type});
  for (const auto &SO : CS.Outputs)
    S.Outputs.push_back({SO.Name, SO.Type});
  return S;
}

TraceSpec TraceSpec::outputsOnly() const {
  TraceSpec S;
  S.ProcName = ProcName;
  S.FrameInstants = FrameInstants;
  S.Outputs = Outputs;
  return S;
}

std::string TraceSpec::diff(const TraceSpec &RHS) const {
  auto SigList = [](const std::vector<Signal> &Sigs) {
    std::string Out;
    for (const Signal &S : Sigs)
      Out += (Out.empty() ? "" : ", ") + S.Name + ":" + typeName(S.Type);
    return Out.empty() ? std::string("<none>") : Out;
  };
  if (ProcName != RHS.ProcName)
    return "process '" + ProcName + "' vs '" + RHS.ProcName + "'";
  if (Clocks != RHS.Clocks) {
    std::string A, B;
    for (const std::string &C : Clocks)
      A += (A.empty() ? "" : ", ") + C;
    for (const std::string &C : RHS.Clocks)
      B += (B.empty() ? "" : ", ") + C;
    return "free clocks [" + A + "] vs [" + B + "]";
  }
  if (Inputs != RHS.Inputs)
    return "inputs [" + SigList(Inputs) + "] vs [" + SigList(RHS.Inputs) +
           "]";
  if (Outputs != RHS.Outputs)
    return "outputs [" + SigList(Outputs) + "] vs [" + SigList(RHS.Outputs) +
           "]";
  if (FrameInstants != RHS.FrameInstants)
    return "frame capacity " + std::to_string(FrameInstants) + " vs " +
           std::to_string(RHS.FrameInstants);
  return "";
}

size_t TraceSpec::maxFramePayloadBytes() const {
  const size_t W = FrameInstants;
  const size_t Bitmap = (W + 7) / 8;
  size_t Total = Clocks.size() * Bitmap;
  for (const Signal &S : Inputs)
    Total += valueBytes(S.Type, W);
  for (const Signal &S : Outputs)
    Total += Bitmap + valueBytes(S.Type, W);
  return Total;
}

void TraceFrame::shape(const TraceSpec &Spec) {
  if (Cap == Spec.FrameInstants &&
      ClockTicks.size() == Spec.Clocks.size() * static_cast<size_t>(Cap))
    return;
  Cap = Spec.FrameInstants;
  ClockTicks.assign(Spec.Clocks.size() * static_cast<size_t>(Cap), 0);
  InputVals.assign(Spec.Inputs.size() * static_cast<size_t>(Cap), Value());
  OutPresent.assign(Spec.Outputs.size() * static_cast<size_t>(Cap), 0);
  OutVals.assign(Spec.Outputs.size() * static_cast<size_t>(Cap), Value());
}

//===----------------------------------------------------------------------===//
// Header codec
//===----------------------------------------------------------------------===//

std::vector<uint8_t> sigc::encodeTraceHeader(const TraceSpec &Spec) {
  std::vector<uint8_t> Out;
  Out.reserve(64);
  Out.insert(Out.end(), TraceMagic, TraceMagic + 4);
  putU16(Out, TraceVersion);
  putU16(Out, TraceEndianMark);
  putU16(Out, static_cast<uint16_t>(Spec.FrameInstants));
  auto PutName = [&Out](const std::string &Name) {
    putU16(Out, static_cast<uint16_t>(Name.size()));
    Out.insert(Out.end(), Name.begin(), Name.end());
  };
  PutName(Spec.ProcName);
  putU16(Out, static_cast<uint16_t>(Spec.Clocks.size()));
  for (const std::string &C : Spec.Clocks)
    PutName(C);
  putU16(Out, static_cast<uint16_t>(Spec.Inputs.size()));
  for (const TraceSpec::Signal &S : Spec.Inputs) {
    Out.push_back(static_cast<uint8_t>(S.Type));
    PutName(S.Name);
  }
  putU16(Out, static_cast<uint16_t>(Spec.Outputs.size()));
  for (const TraceSpec::Signal &S : Spec.Outputs) {
    Out.push_back(static_cast<uint8_t>(S.Type));
    PutName(S.Name);
  }
  putU64(Out, traceFnv64(Out.data() + 4, Out.size() - 4));
  return Out;
}

bool sigc::parseTraceHeader(const uint8_t *Data, size_t Len, TraceSpec &Spec,
                            size_t &HeaderLen, TraceError &Err) {
  Err = TraceError();
  Cursor C{Data, Len, 0, 0};

  const uint8_t *Magic = nullptr;
  if (!C.bytes(Magic, 4, Err, "the trace magic"))
    return false;
  if (std::memcmp(Magic, TraceMagic, 4) != 0) {
    Err = {TraceErrorKind::BadMagic, 0,
           "not a signal trace (bad magic; expected \"SGTR\")"};
    return false;
  }

  uint16_t Version = 0, Endian = 0, FrameW = 0;
  if (!C.u16(Version, Err, "the version field"))
    return false;
  if (Version != TraceVersion) {
    Err = {TraceErrorKind::BadVersion, C.offset() - 2,
           "unsupported trace version " + std::to_string(Version) +
               " (this reader handles version " +
               std::to_string(TraceVersion) + ")"};
    return false;
  }
  if (!C.u16(Endian, Err, "the endianness mark"))
    return false;
  if (Endian != TraceEndianMark) {
    Err = {TraceErrorKind::BadEndian, C.offset() - 2,
           "endianness mark reads 0x" +
               [&] {
                 char Buf[8];
                 std::snprintf(Buf, sizeof Buf, "%04x", Endian);
                 return std::string(Buf);
               }() +
               " (byteswapped trace? this format is little-endian)"};
    return false;
  }
  if (!C.u16(FrameW, Err, "the frame capacity"))
    return false;
  if (FrameW == 0) {
    Err = {TraceErrorKind::Malformed, C.offset() - 2,
           "frame capacity must be at least 1 instant"};
    return false;
  }

  auto GetName = [&C](std::string &Name, TraceError &E,
                      const char *What) -> bool {
    uint16_t NameLen = 0;
    if (!C.u16(NameLen, E, What))
      return false;
    if (NameLen > TraceMaxNameLen) {
      E = {TraceErrorKind::Malformed, C.offset() - 2,
           std::string(What) + " length " + std::to_string(NameLen) +
               " exceeds the format limit " +
               std::to_string(TraceMaxNameLen)};
      return false;
    }
    const uint8_t *P = nullptr;
    if (!C.bytes(P, NameLen, E, What))
      return false;
    Name.assign(reinterpret_cast<const char *>(P), NameLen);
    return true;
  };

  TraceSpec S;
  S.FrameInstants = FrameW;
  if (!GetName(S.ProcName, Err, "the process name"))
    return false;

  uint16_t Count = 0;
  if (!C.u16(Count, Err, "the clock count"))
    return false;
  for (unsigned I = 0; I < Count; ++I) {
    std::string Name;
    if (!GetName(Name, Err, "a clock name"))
      return false;
    S.Clocks.push_back(std::move(Name));
  }

  auto GetSignals = [&](std::vector<TraceSpec::Signal> &Sigs,
                        const char *What) -> bool {
    uint16_t N = 0;
    if (!C.u16(N, Err, What))
      return false;
    for (unsigned I = 0; I < N; ++I) {
      const uint8_t *TypeByte = nullptr;
      if (!C.bytes(TypeByte, 1, Err, "a signal type"))
        return false;
      if (*TypeByte > static_cast<uint8_t>(TypeKind::Real)) {
        Err = {TraceErrorKind::Malformed, C.offset() - 1,
               "invalid signal type code " + std::to_string(*TypeByte)};
        return false;
      }
      TraceSpec::Signal Sig;
      Sig.Type = static_cast<TypeKind>(*TypeByte);
      if (!GetName(Sig.Name, Err, "a signal name"))
        return false;
      Sigs.push_back(std::move(Sig));
    }
    return true;
  };
  if (!GetSignals(S.Inputs, "the input count"))
    return false;
  if (!GetSignals(S.Outputs, "the output count"))
    return false;

  size_t HashedEnd = C.Pos;
  uint64_t StoredHash = 0;
  const uint8_t *HashBytes = nullptr;
  if (!C.bytes(HashBytes, 8, Err, "the interface hash"))
    return false;
  StoredHash = getU64(HashBytes);
  uint64_t Computed = traceFnv64(Data + 4, HashedEnd - 4);
  if (StoredHash != Computed) {
    Err = {TraceErrorKind::InterfaceMismatch, HashedEnd,
           "interface hash mismatch (header corrupt or rewritten: stored " +
               std::to_string(StoredHash) + ", computed " +
               std::to_string(Computed) + ")"};
    return false;
  }

  Spec = std::move(S);
  HeaderLen = C.Pos;
  return true;
}

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

void sigc::encodeTraceFrame(const TraceSpec &Spec, const TraceFrame &F,
                            std::vector<uint8_t> &Out) {
  const size_t Cap = F.Cap;
  const unsigned N = F.Count;
  std::vector<uint8_t> Payload;
  Payload.reserve(Spec.maxFramePayloadBytes());

  for (size_t C = 0; C < Spec.Clocks.size(); ++C)
    packBitmap(Payload, &F.ClockTicks[C * Cap], N);

  for (size_t I = 0; I < Spec.Inputs.size(); ++I) {
    const TypeKind T = Spec.Inputs[I].Type;
    const Value *Row = &F.InputVals[I * Cap];
    if (T == TypeKind::Boolean) {
      for (size_t Byte = 0; Byte * 8 < N; ++Byte) {
        uint8_t B = 0;
        for (size_t Bit = 0; Bit < 8 && Byte * 8 + Bit < N; ++Bit)
          if (Row[Byte * 8 + Bit].Bool)
            B |= static_cast<uint8_t>(1u << Bit);
        Payload.push_back(B);
      }
    } else {
      for (unsigned J = 0; J < N; ++J)
        packValue(Payload, T, Row[J]);
    }
  }

  for (size_t O = 0; O < Spec.Outputs.size(); ++O) {
    const TypeKind T = Spec.Outputs[O].Type;
    const unsigned char *Present = &F.OutPresent[O * Cap];
    const Value *Row = &F.OutVals[O * Cap];
    packBitmap(Payload, Present, N);
    if (T == TypeKind::Boolean) {
      uint8_t B = 0;
      unsigned Bit = 0;
      for (unsigned J = 0; J < N; ++J) {
        if (!Present[J])
          continue;
        if (Row[J].Bool)
          B |= static_cast<uint8_t>(1u << Bit);
        if (++Bit == 8) {
          Payload.push_back(B);
          B = 0;
          Bit = 0;
        }
      }
      if (Bit)
        Payload.push_back(B);
    } else if (T != TypeKind::Event) {
      for (unsigned J = 0; J < N; ++J)
        if (Present[J])
          packValue(Payload, T, Row[J]);
    }
  }

  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU32(Out, F.Start);
  putU16(Out, static_cast<uint16_t>(N));
  putU16(Out, 0);
  putU32(Out, traceFnv32(Payload.data(), Payload.size()));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

void sigc::encodeTraceTrailer(unsigned TotalInstants,
                              std::vector<uint8_t> &Out) {
  putU32(Out, 0);
  putU32(Out, TotalInstants);
  putU16(Out, 0);
  putU16(Out, 0);
  putU32(Out, traceFnv32(nullptr, 0));
}

TraceFrameStatus sigc::decodeTraceFrame(const TraceSpec &Spec,
                                        const uint8_t *Data, size_t Len,
                                        uint64_t StreamOffset, TraceFrame &F,
                                        size_t &Consumed,
                                        unsigned &TotalInstants,
                                        TraceError &Err) {
  Err = TraceError();
  if (Len < TraceFrameHeaderBytes) {
    Err = {TraceErrorKind::Truncated, StreamOffset + Len,
           "stream ends inside a frame header (no trailer seen)"};
    return TraceFrameStatus::NeedMore;
  }
  const uint32_t PayloadLen = getU32(Data);
  const uint32_t Start = getU32(Data + 4);
  const uint16_t Count = getU16(Data + 8);
  const uint16_t Reserved = getU16(Data + 10);
  const uint32_t Checksum = getU32(Data + 12);

  if (Reserved != 0) {
    Err = {TraceErrorKind::Malformed, StreamOffset + 10,
           "reserved frame-header field is nonzero"};
    return TraceFrameStatus::Error;
  }
  if (Count == 0) {
    if (PayloadLen != 0) {
      Err = {TraceErrorKind::Malformed, StreamOffset,
             "zero-instant frame with a nonzero payload length"};
      return TraceFrameStatus::Error;
    }
    Consumed = TraceFrameHeaderBytes;
    TotalInstants = Start;
    return TraceFrameStatus::End;
  }
  if (Count > Spec.FrameInstants) {
    Err = {TraceErrorKind::Malformed, StreamOffset + 8,
           "frame carries " + std::to_string(Count) +
               " instants but the header's frame capacity is " +
               std::to_string(Spec.FrameInstants)};
    return TraceFrameStatus::Error;
  }
  // Frames cover the fixed ranges [k*W, (k+1)*W): an unaligned start
  // means the previous frame was partial mid-stream, which would break
  // the constant-time frame indexing replay windows rely on.
  if (Start % Spec.FrameInstants != 0) {
    Err = {TraceErrorKind::Malformed, StreamOffset + 4,
           "frame starts at instant " + std::to_string(Start) +
               ", which is not a multiple of the frame capacity " +
               std::to_string(Spec.FrameInstants) +
               " (only the stream's final frame may be partial)"};
    return TraceFrameStatus::Error;
  }
  if (PayloadLen > Spec.maxFramePayloadBytes()) {
    Err = {TraceErrorKind::Malformed, StreamOffset,
           "oversized frame: payload length " + std::to_string(PayloadLen) +
               " exceeds the interface's maximum of " +
               std::to_string(Spec.maxFramePayloadBytes()) + " bytes"};
    return TraceFrameStatus::Error;
  }
  if (Len < TraceFrameHeaderBytes + static_cast<size_t>(PayloadLen)) {
    Err = {TraceErrorKind::Truncated, StreamOffset + Len,
           "stream ends inside a frame payload (frame at offset " +
               std::to_string(StreamOffset) + " declares " +
               std::to_string(PayloadLen) + " payload bytes)"};
    return TraceFrameStatus::NeedMore;
  }

  const uint8_t *Payload = Data + TraceFrameHeaderBytes;
  if (traceFnv32(Payload, PayloadLen) != Checksum) {
    Err = {TraceErrorKind::Corrupt, StreamOffset + TraceFrameHeaderBytes,
           "corrupt frame: payload checksum mismatch"};
    return TraceFrameStatus::Error;
  }

  F.shape(Spec);
  F.Start = Start;
  F.Count = Count;
  const size_t Cap = F.Cap;
  Cursor C{Payload, PayloadLen, 0, StreamOffset + TraceFrameHeaderBytes};
  const size_t BitmapBytes = (Count + 7) / 8;

  auto Fail = [&](const char *What) {
    Err = {TraceErrorKind::Corrupt, C.offset(),
           std::string("corrupt frame: payload exhausted inside ") + What};
    return TraceFrameStatus::Error;
  };

  for (size_t Cl = 0; Cl < Spec.Clocks.size(); ++Cl) {
    const uint8_t *Bits = nullptr;
    if (!C.bytes(Bits, BitmapBytes, Err, "a clock bitmap"))
      return Fail("a clock bitmap");
    unsigned char *Row = &F.ClockTicks[Cl * Cap];
    for (unsigned J = 0; J < Count; ++J)
      Row[J] = bitmapBit(Bits, J) ? 1 : 0;
  }

  for (size_t I = 0; I < Spec.Inputs.size(); ++I) {
    const TypeKind T = Spec.Inputs[I].Type;
    Value *Row = &F.InputVals[I * Cap];
    if (T == TypeKind::Event) {
      for (unsigned J = 0; J < Count; ++J)
        Row[J] = Value::makeEvent();
    } else if (T == TypeKind::Boolean) {
      const uint8_t *Bits = nullptr;
      if (!C.bytes(Bits, BitmapBytes, Err, "an input bitmap"))
        return Fail("an input value bitmap");
      for (unsigned J = 0; J < Count; ++J)
        Row[J] = Value::makeBool(bitmapBit(Bits, J));
    } else {
      const uint8_t *Vals = nullptr;
      if (!C.bytes(Vals, 8 * static_cast<size_t>(Count), Err,
                   "input values"))
        return Fail("an input value row");
      for (unsigned J = 0; J < Count; ++J)
        Row[J] = unpackValue(T, Vals + 8 * static_cast<size_t>(J));
    }
  }

  for (size_t O = 0; O < Spec.Outputs.size(); ++O) {
    const TypeKind T = Spec.Outputs[O].Type;
    unsigned char *Present = &F.OutPresent[O * Cap];
    Value *Row = &F.OutVals[O * Cap];
    const uint8_t *Bits = nullptr;
    if (!C.bytes(Bits, BitmapBytes, Err, "an output bitmap"))
      return Fail("an output presence bitmap");
    unsigned NumPresent = 0;
    for (unsigned J = 0; J < Count; ++J) {
      Present[J] = bitmapBit(Bits, J) ? 1 : 0;
      NumPresent += Present[J];
    }
    if (T == TypeKind::Event) {
      for (unsigned J = 0; J < Count; ++J)
        if (Present[J])
          Row[J] = Value::makeEvent();
    } else if (T == TypeKind::Boolean) {
      const uint8_t *VBits = nullptr;
      if (!C.bytes(VBits, (NumPresent + 7) / 8, Err, "output booleans"))
        return Fail("an output boolean row");
      unsigned Bit = 0;
      for (unsigned J = 0; J < Count; ++J)
        if (Present[J])
          Row[J] = Value::makeBool(bitmapBit(VBits, Bit++));
    } else {
      const uint8_t *Vals = nullptr;
      if (!C.bytes(Vals, 8 * static_cast<size_t>(NumPresent), Err,
                   "output values"))
        return Fail("an output value row");
      unsigned At = 0;
      for (unsigned J = 0; J < Count; ++J)
        if (Present[J])
          Row[J] = unpackValue(T, Vals + 8 * static_cast<size_t>(At++));
    }
  }

  if (C.Pos != PayloadLen) {
    Err = {TraceErrorKind::Corrupt, C.offset(),
           "corrupt frame: " + std::to_string(PayloadLen - C.Pos) +
               " trailing payload byte(s) after the last descriptor"};
    return TraceFrameStatus::Error;
  }

  Consumed = TraceFrameHeaderBytes + PayloadLen;
  return TraceFrameStatus::Frame;
}

//===----------------------------------------------------------------------===//
// Serve control frames
//===----------------------------------------------------------------------===//

const char *sigc::serveRejectReasonName(ServeRejectReason R) {
  switch (R) {
  case ServeRejectReason::AtCapacity:
    return "at capacity";
  case ServeRejectReason::Draining:
    return "draining";
  case ServeRejectReason::InterfaceMismatch:
    return "interface mismatch";
  case ServeRejectReason::BadResume:
    return "bad resume";
  }
  return "unknown";
}

void sigc::encodeServeCtrl(const ServeCtrl &C, std::vector<uint8_t> &Out) {
  Out.insert(Out.end(), ServeCtrlMagic, ServeCtrlMagic + 4);
  Out.push_back(static_cast<uint8_t>(C.Type));
  Out.push_back(C.Type == ServeCtrlType::Reject
                    ? static_cast<uint8_t>(C.Reason)
                    : 0);
  switch (C.Type) {
  case ServeCtrlType::Hello:
    putU16(Out, 8);
    putU64(Out, C.Token);
    break;
  case ServeCtrlType::Reject: {
    size_t Len = std::min<size_t>(C.Message.size(), ServeCtrlMaxBody);
    putU16(Out, static_cast<uint16_t>(Len));
    Out.insert(Out.end(), C.Message.data(), C.Message.data() + Len);
    break;
  }
  case ServeCtrlType::Resume:
    putU16(Out, 20);
    putU64(Out, C.Token);
    putU64(Out, C.InterfaceHash);
    putU32(Out, C.ResumeInstant);
    break;
  }
}

TraceFrameStatus sigc::decodeServeCtrl(const uint8_t *Data, size_t Len,
                                       uint64_t StreamOffset, ServeCtrl &C,
                                       size_t &Consumed, TraceError &Err) {
  if (Len < ServeCtrlHeaderBytes) {
    Err = {TraceErrorKind::Truncated, StreamOffset + Len,
           "stream ends inside a control frame header"};
    return TraceFrameStatus::NeedMore;
  }
  if (std::memcmp(Data, ServeCtrlMagic, 4) != 0) {
    Err = {TraceErrorKind::BadMagic, StreamOffset,
           "bad control frame magic"};
    return TraceFrameStatus::Error;
  }
  uint8_t Type = Data[4], Code = Data[5];
  uint16_t BodyLen = getU16(Data + 6);
  if (BodyLen > ServeCtrlMaxBody) {
    Err = {TraceErrorKind::Malformed, StreamOffset + 6,
           "control frame body of " + std::to_string(BodyLen) +
               " bytes exceeds the limit"};
    return TraceFrameStatus::Error;
  }
  if (Len < ServeCtrlHeaderBytes + static_cast<size_t>(BodyLen)) {
    Err = {TraceErrorKind::Truncated, StreamOffset + Len,
           "stream ends inside a control frame body"};
    return TraceFrameStatus::NeedMore;
  }
  const uint8_t *Body = Data + ServeCtrlHeaderBytes;
  switch (Type) {
  case static_cast<uint8_t>(ServeCtrlType::Hello):
    if (BodyLen != 8) {
      Err = {TraceErrorKind::Malformed, StreamOffset + 6,
             "hello frame body must be 8 bytes, got " +
                 std::to_string(BodyLen)};
      return TraceFrameStatus::Error;
    }
    C.Type = ServeCtrlType::Hello;
    C.Token = getU64(Body);
    break;
  case static_cast<uint8_t>(ServeCtrlType::Reject):
    if (Code < static_cast<uint8_t>(ServeRejectReason::AtCapacity) ||
        Code > static_cast<uint8_t>(ServeRejectReason::BadResume)) {
      Err = {TraceErrorKind::Malformed, StreamOffset + 5,
             "unknown reject reason code " + std::to_string(Code)};
      return TraceFrameStatus::Error;
    }
    C.Type = ServeCtrlType::Reject;
    C.Reason = static_cast<ServeRejectReason>(Code);
    C.Message.assign(reinterpret_cast<const char *>(Body), BodyLen);
    break;
  case static_cast<uint8_t>(ServeCtrlType::Resume):
    if (BodyLen != 20) {
      Err = {TraceErrorKind::Malformed, StreamOffset + 6,
             "resume frame body must be 20 bytes, got " +
                 std::to_string(BodyLen)};
      return TraceFrameStatus::Error;
    }
    C.Type = ServeCtrlType::Resume;
    C.Token = getU64(Body);
    C.InterfaceHash = getU64(Body + 8);
    C.ResumeInstant = getU32(Body + 16);
    break;
  default:
    Err = {TraceErrorKind::Malformed, StreamOffset + 4,
           "unknown control frame type " + std::to_string(Type)};
    return TraceFrameStatus::Error;
  }
  Consumed = ServeCtrlHeaderBytes + BodyLen;
  return TraceFrameStatus::Frame;
}

uint64_t sigc::traceSpecHash(const TraceSpec &Spec) {
  // The trace header ends with its interface hash: reuse it, so a Resume
  // request's hash is exactly the one both sides already exchanged in
  // their stream headers.
  std::vector<uint8_t> Header = encodeTraceHeader(Spec);
  return getU64(Header.data() + Header.size() - 8);
}
