//===--- TraceFormat.h - Binary signal-trace format -------------*- C++-*-===//
///
/// \file
/// The on-disk / on-wire format of a signal trace: the recorded input
/// stimulus (free-clock ticks, input values) and output events of a
/// compiled process over a span of instants. A trace is the production
/// counterpart of the oracle's in-memory event lists — it is what a
/// `signalc --record` run writes, what `--replay` and `--serve` sessions
/// read, and what the differential trace leg pins byte for byte.
///
/// Layout (every multi-byte integer is little-endian, written with
/// explicit byte shifts so the format is identical on any host):
///
///   header:
///     'S' 'G' 'T' 'R'            magic
///     u16 version                (currently 1)
///     u16 endian mark 0x0102     (reads back 0x0201 on a byteswapped
///                                 producer: diagnosed, never guessed)
///     u16 frame capacity W       (instants per full frame)
///     u16 len + bytes            process name
///     u16 count, then per clock:   u16 len + bytes      (free clocks)
///     u16 count, then per input:   u8 type, u16 len + bytes
///     u16 count, then per output:  u8 type, u16 len + bytes
///     u64 interface hash         FNV-1a64 over bytes [4, here)
///
///   then a sequence of frames, each an instant-batch:
///     u32 payload length
///     u32 start instant
///     u16 instant count          (1..W; 0 with payload 0 = trailer)
///     u16 reserved (0)
///     u32 payload checksum       FNV-1a32
///     payload:
///       per clock:  ceil(count/8) presence bitmap (LSB-first)
///       per input:  values for *every* instant of the frame, packed by
///                   type — event: nothing, boolean: bitmap,
///                   integer: 8 bytes two's-complement, real: 8 bytes
///                   IEEE-754 bits (input values are dense because the
///                   environment contract makes them pure functions of
///                   the instant; presence is derived by the program)
///       per output: ceil(count/8) presence bitmap, then values of the
///                   *present* instants only, packed by type
///
///   Frames cover the fixed instant ranges [k*W, (k+1)*W): every frame
///   starts at a multiple of W, so only the stream's final frame may
///   carry fewer than W instants. Decoders reject unaligned frame starts
///   — replay windows index resident frames in constant time by dividing
///   the instant by W, which a mid-stream partial frame would break.
///
///   trailer frame: payload 0, start = total instants, count 0 — marks a
///   clean end of stream; EOF anywhere else is a positioned diagnostic.
///
/// Readers never trust a length: magic, version, endianness, name and
/// descriptor-count limits, frame capacity, payload bounds and checksums
/// are all validated, and every failure carries the byte offset it was
/// detected at.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_IO_TRACEFORMAT_H
#define SIGNALC_IO_TRACEFORMAT_H

#include "interp/CompiledStep.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sigc {

/// Format constants.
constexpr uint8_t TraceMagic[4] = {'S', 'G', 'T', 'R'};
constexpr uint16_t TraceVersion = 1;
constexpr uint16_t TraceEndianMark = 0x0102;
constexpr unsigned TraceFrameHeaderBytes = 16;
constexpr unsigned TraceDefaultFrameInstants = 64;
/// Sanity limits a malformed header may not exceed.
constexpr unsigned TraceMaxNameLen = 4096;
constexpr unsigned TraceMaxDescriptors = 65535;

/// What went wrong while decoding (TraceErrorKind::None means nothing).
enum class TraceErrorKind {
  None,
  Truncated, ///< Ran out of bytes mid-structure (or: need more data).
  BadMagic,
  BadVersion,
  BadEndian,
  Malformed,         ///< A field violates the format's own limits.
  Corrupt,           ///< Checksum mismatch / inconsistent frame payload.
  InterfaceMismatch, ///< Trace interface does not match the process.
  Io,                ///< The underlying source/sink failed.
};

/// A positioned decode diagnostic.
struct TraceError {
  TraceErrorKind Kind = TraceErrorKind::None;
  uint64_t Offset = 0; ///< Byte offset the failure was detected at.
  std::string Message;

  bool ok() const { return Kind == TraceErrorKind::None; }
  /// True when the only problem is that the byte stream ended: an
  /// incremental consumer (the serve loop) waits for more data instead
  /// of failing.
  bool needMoreData() const { return Kind == TraceErrorKind::Truncated; }
  /// "offset 123: message" (the CLI's diagnostic body).
  std::string str() const;
};

/// The interface a trace is recorded against: the process's free clocks,
/// inputs and outputs in descriptor order. Replay validates this against
/// the compiled step before any frame is decoded.
struct TraceSpec {
  struct Signal {
    std::string Name;
    TypeKind Type = TypeKind::Unknown;
    bool operator==(const Signal &RHS) const {
      return Name == RHS.Name && Type == RHS.Type;
    }
  };

  std::string ProcName;
  std::vector<std::string> Clocks;
  std::vector<Signal> Inputs;
  std::vector<Signal> Outputs;
  unsigned FrameInstants = TraceDefaultFrameInstants;

  /// The spec of \p CS's environment boundary (descriptor order).
  static TraceSpec fromStep(const CompiledStep &CS, std::string ProcName,
                            unsigned FrameInstants = TraceDefaultFrameInstants);

  /// The response-side spec of a serve session: same outputs, no inputs
  /// (the server streams back only what the process produced).
  TraceSpec outputsOnly() const;

  bool operator==(const TraceSpec &RHS) const {
    return ProcName == RHS.ProcName && Clocks == RHS.Clocks &&
           Inputs == RHS.Inputs && Outputs == RHS.Outputs &&
           FrameInstants == RHS.FrameInstants;
  }
  bool operator!=(const TraceSpec &RHS) const { return !(*this == RHS); }

  /// Human-readable first difference against \p RHS (interface-mismatch
  /// diagnostics); empty when equal.
  std::string diff(const TraceSpec &RHS) const;

  /// Upper bound of an encoded frame payload (oversized-length check).
  size_t maxFramePayloadBytes() const;
};

/// One decoded instant-batch, dense row-major per descriptor. Buffers are
/// sized to the spec's frame capacity once and reused frame to frame —
/// steady-state decoding allocates nothing.
struct TraceFrame {
  unsigned Start = 0;
  unsigned Count = 0;
  unsigned Cap = 0; ///< Row stride (the spec's FrameInstants).
  std::vector<unsigned char> ClockTicks; ///< [clock * Cap + i]
  std::vector<Value> InputVals;          ///< [input * Cap + i]
  std::vector<unsigned char> OutPresent; ///< [output * Cap + i]
  std::vector<Value> OutVals;            ///< [output * Cap + i]

  /// Sizes the buffers for \p Spec (idempotent).
  void shape(const TraceSpec &Spec);
  unsigned end() const { return Start + Count; }
};

//===----------------------------------------------------------------------===//
// Wire codec — shared by TraceWriter, TraceReader and the serve loop's
// incremental parser.
//===----------------------------------------------------------------------===//

/// Encodes the header (magic through interface hash) of \p Spec.
std::vector<uint8_t> encodeTraceHeader(const TraceSpec &Spec);

/// Parses a header from \p Data. On success fills \p Spec, sets
/// \p HeaderLen to the bytes consumed and returns true. On failure
/// returns false with \p Err positioned; Err.needMoreData() means the
/// buffer simply ends before the header does.
bool parseTraceHeader(const uint8_t *Data, size_t Len, TraceSpec &Spec,
                      size_t &HeaderLen, TraceError &Err);

/// Encodes one frame (header + payload) of \p F under \p Spec, appending
/// to \p Out. \p F.Count may be any value in [1, Spec.FrameInstants], but
/// \p F.Start must be a multiple of Spec.FrameInstants — decoders reject
/// unaligned frames (only the final frame of a stream may be partial).
void encodeTraceFrame(const TraceSpec &Spec, const TraceFrame &F,
                      std::vector<uint8_t> &Out);

/// Appends the end-of-stream trailer for a trace of \p TotalInstants.
void encodeTraceTrailer(unsigned TotalInstants, std::vector<uint8_t> &Out);

/// Result of pulling one frame out of a byte stream.
enum class TraceFrameStatus {
  Frame,   ///< \p F holds the next instant-batch.
  End,     ///< The trailer was reached (clean end of stream).
  NeedMore,///< Incremental source: the frame is not fully buffered yet.
  Error,   ///< \p Err is positioned.
};

/// Decodes the frame starting at \p Data (which has \p Len bytes and
/// lives at stream offset \p StreamOffset, used only for diagnostics).
/// On Frame/End, \p Consumed is the bytes eaten. \p TotalInstants is
/// filled from the trailer on End.
TraceFrameStatus decodeTraceFrame(const TraceSpec &Spec, const uint8_t *Data,
                                  size_t Len, uint64_t StreamOffset,
                                  TraceFrame &F, size_t &Consumed,
                                  unsigned &TotalInstants, TraceError &Err);

/// FNV-1a over \p Data (the format's hash/checksum primitive).
uint64_t traceFnv64(const uint8_t *Data, size_t Len);
uint32_t traceFnv32(const uint8_t *Data, size_t Len);

//===----------------------------------------------------------------------===//
// Serve control frames — the session-management preamble the `--serve`
// front end speaks around the trace streams themselves.
//===----------------------------------------------------------------------===//
//
// Layout (little-endian, like the trace format):
//
//   'S' 'G' 'C' 'T'   magic (distinct from the trace header's SGTR, so
//                     the first four bytes of a connection say whether a
//                     control preamble or a plain trace stream follows)
//   u8  type          Hello / Reject / Resume
//   u8  code          reject reason (0 otherwise)
//   u16 body length
//   body:
//     Hello   u64 session token        (server -> client, on admission)
//     Reject  diagnostic message bytes (server -> client, then close)
//     Resume  u64 session token, u64 interface hash, u32 resume instant
//             (client -> server, before re-sending the trace header)

constexpr uint8_t ServeCtrlMagic[4] = {'S', 'G', 'C', 'T'};
constexpr unsigned ServeCtrlHeaderBytes = 8;
/// Every Hello is exactly this long: a fixed-size prefix a client (or a
/// byte-identity test) can strip without parsing.
constexpr unsigned ServeHelloBytes = 16;
/// Bound on a Reject diagnostic (the only variable-length body).
constexpr unsigned ServeCtrlMaxBody = 4096;

enum class ServeCtrlType : uint8_t {
  Hello = 1,  ///< Session admitted; body carries the resume token.
  Reject = 2, ///< Connection refused; code is the reason, body the text.
  Resume = 3, ///< Client requests to resume a parked session.
};

/// Why a connection was refused (the Reject frame's code).
enum class ServeRejectReason : uint8_t {
  AtCapacity = 1,        ///< No free lane / batch budget exhausted.
  Draining = 2,          ///< The server is shutting down.
  InterfaceMismatch = 3, ///< Stimulus interface != served process.
  BadResume = 4,         ///< Unknown token or no checkpoint at the instant.
};

/// \returns the reason's diagnostic spelling ("at capacity", ...).
const char *serveRejectReasonName(ServeRejectReason R);

/// One decoded (or to-be-encoded) control frame.
struct ServeCtrl {
  ServeCtrlType Type = ServeCtrlType::Hello;
  ServeRejectReason Reason = ServeRejectReason::AtCapacity;
  uint64_t Token = 0;         ///< Hello / Resume.
  uint64_t InterfaceHash = 0; ///< Resume.
  unsigned ResumeInstant = 0; ///< Resume.
  std::string Message;        ///< Reject.
};

/// Appends the encoding of \p C to \p Out.
void encodeServeCtrl(const ServeCtrl &C, std::vector<uint8_t> &Out);

/// Decodes one control frame from \p Data. Frame on success (\p Consumed
/// set), NeedMore when the buffer ends inside the frame, Error (with
/// \p Err positioned relative to \p StreamOffset) on a malformed frame.
TraceFrameStatus decodeServeCtrl(const uint8_t *Data, size_t Len,
                                 uint64_t StreamOffset, ServeCtrl &C,
                                 size_t &Consumed, TraceError &Err);

/// The interface hash a Resume request must present: the u64 the trace
/// header of \p Spec embeds (it covers process name, descriptors and
/// frame capacity, so equal hashes mean resumable-compatible streams).
uint64_t traceSpecHash(const TraceSpec &Spec);

} // namespace sigc

#endif // SIGNALC_IO_TRACEFORMAT_H
