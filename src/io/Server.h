//===--- Server.h - Trace-stream session server -----------------*- C++-*-===//
///
/// \file
/// `signalc --serve`: a Unix-domain-socket front end that runs compiled
/// reactive sessions over the fleet executor. Each client connection is
/// one session speaking the binary trace format in both directions:
///
///   client -> server   an optional Resume control frame, then a full
///                      trace stream (header, stimulus frames, trailer)
///                      against the compiled process interface;
///   server -> client   a Hello control frame carrying the session's
///                      resume token, then an outputs-only trace stream
///                      of what the process produced, frame by frame as
///                      batches execute — or a single typed Reject frame
///                      (at-capacity / draining / interface-mismatch /
///                      bad-resume) when the connection is refused.
///
/// Fault tolerance is part of the protocol. A session that disconnects
/// (or stalls past a deadline) mid-stream is parked: its trace spec and
/// a ring of lane-state checkpoints, one per executed frame boundary,
/// survive the connection. A client reconnecting with Resume(token,
/// interface hash, instant k) is rebound onto a fresh lane whose delay
/// state is restored from the checkpoint at k; it re-sends its header
/// and the stimulus from frame k on, nothing is re-executed, and the
/// response continues headerless at k — concatenating the connections'
/// response bytes (minus the fixed-size Hellos) reproduces an
/// uninterrupted run byte for byte. SIGTERM/SIGINT starts a graceful
/// drain: accepting stops (new connections get the draining reject),
/// resident frames finish, output queues flush behind early trailers,
/// and the server exits 0; a second signal — or the drain grace
/// deadline — forces exit with per-session teardown counters.
///
/// Sessions map onto fleet lanes: the server owns one FleetExecutor of
/// --max-sessions instances, a joining session claims a free lane
/// (resetting only that lane's delay state), and each scheduler wakeup
/// advances runnable sessions by up to one instant-batch via stepLanes —
/// sessions at different instants coexist because lane ranges advance
/// independently.
///
/// Flow control is explicit in both directions: a session whose
/// un-drained response bytes exceed the queue bound stops being stepped
/// until the client reads (outbound backpressure), and a session whose
/// resident inbound frame window runs more than a few batches ahead of
/// execution stops being read and parsed until execution catches up —
/// the kernel socket buffer then backpressures the client, so a fast
/// sender cannot grow server memory without bound. Runnable sessions are
/// drained fair round-robin, and a client disconnecting mid-frame tears
/// its session down cleanly — the lane returns to the free list,
/// everyone else is untouched. A client that half-closes after its
/// trailer is normal: buffered bytes are parsed before an EOF is
/// declared a disconnect.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_IO_SERVER_H
#define SIGNALC_IO_SERVER_H

#include "interp/CompiledStep.h"
#include "native/TierController.h"

#include <string>

namespace sigc {

struct ServeOptions {
  std::string SocketPath;
  /// Concurrent-session capacity — the fleet's instance count.
  unsigned MaxSessions = 4;
  /// Instants a runnable session advances per scheduler wakeup.
  unsigned BatchInstants = 64;
  /// Un-drained response bytes above which a session is not stepped.
  size_t MaxQueuedBytes = 1 << 20;
  /// Batches of instants the inbound resident frame window may run
  /// ahead of execution before the session stops being read and parsed
  /// (inbound flow control; at least one client frame is always
  /// admitted so parsing can progress).
  unsigned MaxAheadBatches = 4;
  /// Exit after this many sessions have ended (0 = serve forever) —
  /// lets tests and scripted drivers run a bounded server.
  unsigned SessionLimit = 0;
  /// Disconnected (or deadline-stalled) sessions parked for resume, at
  /// most this many (oldest evicted first); 0 disables session resume
  /// entirely. While resume is enabled, execution batches are clamped
  /// to frame boundaries so every boundary has a lane checkpoint.
  unsigned MaxParkedSessions = 0;
  /// Lane-state checkpoints retained per session (the resume window:
  /// a client may resume at any of the last this-many frame
  /// boundaries).
  unsigned ResumeCheckpoints = 8;
  /// Global in-flight-batch budget, in instants: each admitted session
  /// reserves its maximum inbound run-ahead window
  /// (MaxAheadBatches * BatchInstants) against this budget, and a
  /// connection whose reservation does not fit is rejected at capacity
  /// even when lanes are free. 0 = unlimited (bounded by MaxSessions
  /// alone).
  uint64_t BatchBudgetInstants = 0;
  /// A session waiting on stimulus that receives no inbound bytes for
  /// this long is torn down as stalled. 0 = no idle deadline.
  unsigned IdleTimeoutMs = 0;
  /// A session with queued response bytes whose client accepts none of
  /// them for this long is torn down as stalled. 0 = no write deadline.
  unsigned WriteTimeoutMs = 0;
  /// Draining (first SIGTERM/SIGINT): sessions that cannot flush within
  /// this long are forcibly torn down and the server exits anyway.
  /// 0 = wait indefinitely (a second signal still forces exit).
  unsigned DrainGraceMs = 0;
  /// SO_SNDBUF for accepted connections (0 = kernel default). Shrinking
  /// it makes outbound backpressure — and therefore the write deadline
  /// — reachable with small streams; an ops/testing knob.
  unsigned SendBufBytes = 0;
  /// Tiered native execution (--native/--cache-dir/--tier-after). When
  /// the module is ready the whole fleet swaps at a wakeup boundary —
  /// between stepLanes windows, so every session sees the handoff at a
  /// batch boundary and lane checkpoints keep resuming identically.
  TierOptions Tier;
};

/// Serves sessions of \p CS (compiled from process \p ProcName) until
/// SessionLimit is reached. \returns a process exit code: 0 on a clean
/// bounded run or a completed drain, 1 when a second signal forced
/// exit, 2 on a setup failure (socket path, listen).
int runTraceServer(const CompiledStep &CS, const std::string &ProcName,
                   const ServeOptions &Opts);

} // namespace sigc

#endif // SIGNALC_IO_SERVER_H
