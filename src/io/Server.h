//===--- Server.h - Trace-stream session server -----------------*- C++-*-===//
///
/// \file
/// `signalc --serve`: a Unix-domain-socket front end that runs compiled
/// reactive sessions over the fleet executor. Each client connection is
/// one session speaking the binary trace format in both directions:
///
///   client -> server   a full trace stream (header, stimulus frames,
///                      trailer) against the compiled process interface;
///   server -> client   an outputs-only trace stream of what the process
///                      produced, frame by frame as batches execute.
///
/// Sessions map onto fleet lanes: the server owns one FleetExecutor of
/// --max-sessions instances, a joining session claims a free lane
/// (resetting only that lane's delay state), and each scheduler wakeup
/// advances runnable sessions by up to one instant-batch via stepLanes —
/// sessions at different instants coexist because lane ranges advance
/// independently.
///
/// Flow control is explicit in both directions: a session whose
/// un-drained response bytes exceed the queue bound stops being stepped
/// until the client reads (outbound backpressure), and a session whose
/// resident inbound frame window runs more than a few batches ahead of
/// execution stops being read and parsed until execution catches up —
/// the kernel socket buffer then backpressures the client, so a fast
/// sender cannot grow server memory without bound. Runnable sessions are
/// drained fair round-robin, and a client disconnecting mid-frame tears
/// its session down cleanly — the lane returns to the free list,
/// everyone else is untouched. A client that half-closes after its
/// trailer is normal: buffered bytes are parsed before an EOF is
/// declared a disconnect.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_IO_SERVER_H
#define SIGNALC_IO_SERVER_H

#include "interp/CompiledStep.h"

#include <string>

namespace sigc {

struct ServeOptions {
  std::string SocketPath;
  /// Concurrent-session capacity — the fleet's instance count.
  unsigned MaxSessions = 4;
  /// Instants a runnable session advances per scheduler wakeup.
  unsigned BatchInstants = 64;
  /// Un-drained response bytes above which a session is not stepped.
  size_t MaxQueuedBytes = 1 << 20;
  /// Batches of instants the inbound resident frame window may run
  /// ahead of execution before the session stops being read and parsed
  /// (inbound flow control; at least one client frame is always
  /// admitted so parsing can progress).
  unsigned MaxAheadBatches = 4;
  /// Exit after this many sessions have ended (0 = serve forever) —
  /// lets tests and scripted drivers run a bounded server.
  unsigned SessionLimit = 0;
};

/// Serves sessions of \p CS (compiled from process \p ProcName) until
/// SessionLimit is reached. \returns a process exit code: 0 on a clean
/// bounded run, 2 on a setup failure (socket path, listen).
int runTraceServer(const CompiledStep &CS, const std::string &ProcName,
                   const ServeOptions &Opts);

} // namespace sigc

#endif // SIGNALC_IO_SERVER_H
