//===--- Server.cpp -------------------------------------------------------===//

#include "io/Server.h"

#include "interp/FleetExecutor.h"
#include "io/TraceEnvironment.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sigc;

namespace {

/// Longest prefix of a stream we buffer while its header is still
/// incomplete. Frame payloads are bounded by the spec once the header is
/// in; before that, this is the only bound a hostile client sees.
constexpr size_t MaxHeaderBytes = 16u << 20;

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Appends response bytes to the session's output queue.
struct QueueSink : TraceSink {
  std::vector<uint8_t> *Q = nullptr;
  bool write(const uint8_t *Data, size_t Len) override {
    Q->insert(Q->end(), Data, Data + Len);
    return true;
  }
};

struct Session {
  int Fd = -1;
  unsigned Id = 0;   ///< Monotone session number (diagnostics).
  unsigned Lane = 0; ///< Fleet instance this session owns.

  // Inbound stream.
  std::vector<uint8_t> In;
  size_t InPos = 0;      ///< Consumed prefix of In.
  uint64_t InOffset = 0; ///< Stream offset of In[InPos] (diagnostics).
  bool InEof = false;    ///< No more inbound bytes will ever arrive.
  bool HeaderDone = false;
  bool TrailerSeen = false;
  unsigned Total = 0; ///< Declared total instants (once TrailerSeen).

  // Execution.
  std::unique_ptr<StreamEnvironment> Env;
  unsigned Executed = 0; ///< Instants stepped so far.
  bool Finished = false; ///< Response trailer written.
  uint64_t GuardTests = 0, Instrs = 0;

  // Outbound stream.
  QueueSink Sink;
  std::unique_ptr<TraceWriter> Echo;
  std::vector<uint8_t> Out;
  size_t OutPos = 0;

  size_t queuedBytes() const { return Out.size() - OutPos; }
};

class Server {
public:
  Server(const CompiledStep &CS, const std::string &ProcName,
         const ServeOptions &Opts)
      : CS(CS), Opts(Opts), Expected(TraceSpec::fromStep(CS, ProcName)),
        Exec(CS, Opts.MaxSessions), Envs(Opts.MaxSessions, nullptr),
        Slots(Opts.MaxSessions) {
    for (unsigned L = 0; L < Opts.MaxSessions; ++L)
      FreeLanes.push_back(Opts.MaxSessions - 1 - L);
  }

  int run();

private:
  void acceptClients();
  void readSession(Session &S);
  bool parseSession(Session &S); ///< False: session torn down.
  bool stepSession(Session &S);  ///< True when progress was made.
  void sendSession(Session &S);
  void teardown(Session &S, const char *How);
  /// Inbound flow control: instants the resident frame window may run
  /// ahead of execution. At least one client-chosen frame, so parsing
  /// can always make progress.
  unsigned maxAheadInstants(const Session &S) const {
    unsigned Ahead = std::max(Opts.MaxAheadBatches, 1u) * Opts.BatchInstants;
    return std::max(Ahead, S.Env->streamSpec().FrameInstants);
  }
  /// True while the session's window is far enough ahead that reading
  /// and parsing should pause (the kernel buffer backpressures the
  /// client) until execution catches up.
  bool windowFull(const Session &S) const {
    return S.HeaderDone &&
           S.Env->residentEnd() >= S.Executed + maxAheadInstants(S);
  }
  Session *sessionAt(size_t Slot) { return Slots[Slot].get(); }

  const CompiledStep &CS;
  const ServeOptions &Opts;
  TraceSpec Expected;
  FleetExecutor Exec;
  std::vector<Environment *> Envs;
  std::vector<std::unique_ptr<Session>> Slots; ///< Indexed by lane.
  std::vector<unsigned> FreeLanes;
  int ListenFd = -1;
  unsigned NextId = 0;
  unsigned Ended = 0;
  size_t RR = 0; ///< Round-robin scan start.
};

void Server::teardown(Session &S, const char *How) {
  // Always printed: scripted drivers (and the CI smoke test) sum these.
  std::fprintf(stderr,
               "session %u: instants=%u outputs=%llu guard_tests=%llu "
               "executed=%llu (%s)\n",
               S.Id, S.Executed,
               static_cast<unsigned long long>(S.Env ? S.Env->outputCount()
                                                     : 0),
               static_cast<unsigned long long>(S.GuardTests),
               static_cast<unsigned long long>(S.Instrs), How);
  ::close(S.Fd);
  Envs[S.Lane] = nullptr;
  FreeLanes.push_back(S.Lane);
  Slots[S.Lane].reset();
  ++Ended;
}

void Server::acceptClients() {
  while (!FreeLanes.empty()) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (or a transient error): try again next wakeup.
    if (!setNonBlocking(Fd)) {
      ::close(Fd);
      continue;
    }
    unsigned Lane = FreeLanes.back();
    FreeLanes.pop_back();
    auto S = std::make_unique<Session>();
    S->Fd = Fd;
    S->Id = NextId++;
    S->Lane = Lane;
    Slots[Lane] = std::move(S);
  }
}

void Server::readSession(Session &S) {
  uint8_t Buf[1 << 16];
  while (!S.InEof) {
    ssize_t N = ::recv(S.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      S.In.insert(S.In.end(), Buf, Buf + N);
      if (static_cast<size_t>(N) == sizeof(Buf))
        continue; // More may be pending.
      break;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (N < 0 && errno == EINTR)
      continue;
    // EOF or a hard error: nothing further will arrive, but bytes
    // already buffered may still hold complete frames — even the
    // trailer, when the client half-closes right after sending it.
    // parseSession decides whether this was a mid-stream disconnect.
    S.InEof = true;
  }
  if (!parseSession(S))
    return;
  // Reclaim the consumed prefix once it dominates the buffer.
  if (S.InPos > (64u << 10) && S.InPos > S.In.size() / 2) {
    S.In.erase(S.In.begin(), S.In.begin() + static_cast<long>(S.InPos));
    S.InPos = 0;
  }
}

bool Server::parseSession(Session &S) {
  if (!S.HeaderDone) {
    TraceSpec Spec;
    size_t HeaderLen = 0;
    TraceError Err;
    if (!parseTraceHeader(S.In.data() + S.InPos, S.In.size() - S.InPos, Spec,
                          HeaderLen, Err)) {
      if (Err.needMoreData()) {
        if (S.InEof) {
          // The stream ended inside the header: a real disconnect.
          std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
          teardown(S, "disconnected");
          return false;
        }
        if (S.In.size() - S.InPos > MaxHeaderBytes) {
          std::fprintf(stderr, "session %u: header exceeds %zu bytes\n", S.Id,
                       MaxHeaderBytes);
          teardown(S, "protocol error");
          return false;
        }
        return true; // Wait for more bytes.
      }
      std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
      teardown(S, "protocol error");
      return false;
    }
    TraceSpec Check = TraceSpec::fromStep(CS, Spec.ProcName,
                                          Spec.FrameInstants);
    std::string Diff = Spec.diff(Check);
    if (!Diff.empty()) {
      std::fprintf(stderr,
                   "session %u: trace interface does not match the served "
                   "process: %s\n",
                   S.Id, Diff.c_str());
      teardown(S, "interface mismatch");
      return false;
    }
    S.InPos += HeaderLen;
    S.InOffset += HeaderLen;
    S.HeaderDone = true;
    S.Env = std::make_unique<StreamEnvironment>(Spec);
    S.Sink.Q = &S.Out;
    // The response header goes out immediately: an outputs-only stream
    // with the same frame capacity the client chose.
    S.Echo = std::make_unique<TraceWriter>(S.Sink, Spec.outputsOnly());
    S.Env->setEcho(S.Echo.get());
    Exec.resetLanes(S.Lane, 1);
    Envs[S.Lane] = S.Env.get();
  }
  // Inbound flow control: stop decoding (leaving bytes buffered and, via
  // the poll loop, unread in the kernel) once the resident window is far
  // enough ahead of execution; the scheduler resumes parsing after each
  // batch it executes.
  while (!S.TrailerSeen && !windowFull(S)) {
    TraceFrame F = S.Env->takeRecycledFrame();
    size_t Consumed = 0;
    TraceError Err;
    TraceFrameStatus St =
        decodeTraceFrame(S.Env->streamSpec(), S.In.data() + S.InPos,
                         S.In.size() - S.InPos, S.InOffset, F, Consumed,
                         S.Total, Err);
    if (St == TraceFrameStatus::NeedMore) {
      if (S.InEof) {
        // The stream ended mid-frame with no trailer: a disconnect.
        std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
        teardown(S, "disconnected");
        return false;
      }
      return true;
    }
    if (St == TraceFrameStatus::Error) {
      std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
      teardown(S, "protocol error");
      return false;
    }
    S.InPos += Consumed;
    S.InOffset += Consumed;
    if (St == TraceFrameStatus::End) {
      if (S.Total != S.Env->residentEnd()) {
        std::fprintf(stderr,
                     "session %u: trailer declares %u instants but frames "
                     "covered %u\n",
                     S.Id, S.Total, S.Env->residentEnd());
        teardown(S, "protocol error");
        return false;
      }
      S.TrailerSeen = true;
      return true;
    }
    if (F.Start != S.Env->residentEnd()) {
      std::fprintf(stderr,
                   "session %u: frame starts at instant %u, expected %u\n",
                   S.Id, F.Start, S.Env->residentEnd());
      teardown(S, "protocol error");
      return false;
    }
    S.Env->pushFrame(std::move(F));
  }
  return true;
}

bool Server::stepSession(Session &S) {
  if (!S.HeaderDone || S.Finished)
    return false;
  unsigned Resident = S.Env->residentEnd();
  if (S.Executed < Resident && S.queuedBytes() <= Opts.MaxQueuedBytes) {
    unsigned N = std::min(Opts.BatchInstants, Resident - S.Executed);
    uint64_t G0 = Exec.guardTests(), E0 = Exec.executed();
    Exec.stepLanes(Envs, S.Lane, 1, S.Executed, N);
    S.GuardTests += Exec.guardTests() - G0;
    S.Instrs += Exec.executed() - E0;
    S.Executed += N;
    S.Env->release(S.Executed);
    return true;
  }
  if (S.TrailerSeen && S.Executed == S.Total) {
    S.Echo->finish(S.Total);
    S.Finished = true;
    return true;
  }
  return false;
}

void Server::sendSession(Session &S) {
  while (S.OutPos < S.Out.size()) {
    ssize_t N = ::send(S.Fd, S.Out.data() + S.OutPos, S.Out.size() - S.OutPos,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return;
      teardown(S, "disconnected");
      return;
    }
    S.OutPos += static_cast<size_t>(N);
  }
  S.Out.clear();
  S.OutPos = 0;
  if (S.Finished)
    teardown(S, "clean");
}

int Server::run() {
  if (Opts.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "signalc: socket path too long: %s\n",
                 Opts.SocketPath.c_str());
    return 2;
  }
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "signalc: socket: %s\n", std::strerror(errno));
    return 2;
  }
  ::unlink(Opts.SocketPath.c_str());
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0 || !setNonBlocking(ListenFd)) {
    std::fprintf(stderr, "signalc: cannot serve on %s: %s\n",
                 Opts.SocketPath.c_str(), std::strerror(errno));
    ::close(ListenFd);
    return 2;
  }
  std::fprintf(stderr,
               "serving %s on %s (max %u sessions, batch %u)\n",
               Expected.ProcName.c_str(), Opts.SocketPath.c_str(),
               Opts.MaxSessions, Opts.BatchInstants);

  std::vector<pollfd> Polls;
  std::vector<size_t> PollSlot; // Poll index -> lane (listen fd excluded).
  for (;;) {
    if (Opts.SessionLimit && Ended >= Opts.SessionLimit) {
      bool Active = false;
      for (auto &Slot : Slots)
        Active |= Slot != nullptr;
      if (!Active)
        break;
    }

    Polls.clear();
    PollSlot.clear();
    bool AcceptMore =
        !FreeLanes.empty() &&
        !(Opts.SessionLimit && NextId >= Opts.SessionLimit);
    Polls.push_back({ListenFd, static_cast<short>(AcceptMore ? POLLIN : 0),
                     0});
    bool Runnable = false;
    for (size_t L = 0; L < Slots.size(); ++L) {
      Session *S = sessionAt(L);
      if (!S)
        continue;
      short Ev = 0;
      // Inbound flow control: while the resident window is full (or the
      // stream already ended), leave arriving bytes in the kernel buffer
      // so the client blocks in send instead of growing our memory.
      if (!S->TrailerSeen && !S->InEof && !windowFull(*S))
        Ev |= POLLIN;
      if (S->queuedBytes() > 0)
        Ev |= POLLOUT;
      Polls.push_back({S->Fd, Ev, 0});
      PollSlot.push_back(L);
      if (S->HeaderDone && !S->Finished &&
          ((S->Executed < S->Env->residentEnd() &&
            S->queuedBytes() <= Opts.MaxQueuedBytes) ||
           (S->TrailerSeen && S->Executed == S->Total)))
        Runnable = true;
    }

    int Ready = ::poll(Polls.data(), Polls.size(), Runnable ? 0 : -1);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "signalc: poll: %s\n", std::strerror(errno));
      break;
    }

    if (Polls[0].revents & POLLIN)
      acceptClients();
    for (size_t P = 1; P < Polls.size(); ++P) {
      Session *S = sessionAt(PollSlot[P - 1]);
      if (!S || S->Fd != Polls[P].fd)
        continue; // Torn down while handling an earlier event.
      if (Polls[P].revents & (POLLIN | POLLHUP | POLLERR))
        readSession(*S);
      S = sessionAt(PollSlot[P - 1]);
      if (S && S->Fd == Polls[P].fd && (Polls[P].revents & POLLOUT))
        sendSession(*S);
    }

    // Scheduler pass: advance every runnable session by one batch, fair
    // round-robin (the scan starts one lane later each wakeup).
    size_t NumSlots = Slots.size();
    RR = NumSlots ? (RR + 1) % NumSlots : 0;
    for (size_t Scan = 0; Scan < NumSlots; ++Scan) {
      size_t L = (RR + Scan) % NumSlots;
      Session *S = sessionAt(L);
      if (!S || !stepSession(*S))
        continue;
      // Execution advanced: buffered inbound bytes that flow control
      // paused may be parseable now (stepSession never tears down, so S
      // is still live here; parseSession may).
      if (!S->TrailerSeen && S->In.size() > S->InPos && !parseSession(*S))
        continue;
      // Push what the batch produced without waiting for POLLOUT.
      S = sessionAt(L);
      if (S && S->queuedBytes() > 0)
        sendSession(*S);
    }
  }

  ::close(ListenFd);
  ::unlink(Opts.SocketPath.c_str());
  std::fprintf(stderr, "served %u session(s)\n", Ended);
  return 0;
}

} // namespace

int sigc::runTraceServer(const CompiledStep &CS, const std::string &ProcName,
                         const ServeOptions &Opts) {
  return Server(CS, ProcName, Opts).run();
}
