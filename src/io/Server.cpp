//===--- Server.cpp -------------------------------------------------------===//

#include "io/Server.h"

#include "interp/FleetExecutor.h"
#include "io/TraceEnvironment.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace sigc;

namespace {

/// Longest prefix of a stream we buffer while its header is still
/// incomplete. Frame payloads are bounded by the spec once the header is
/// in; before that, this is the only bound a hostile client sees.
constexpr size_t MaxHeaderBytes = 16u << 20;

/// Signals received (SIGTERM/SIGINT). The first starts a drain, the
/// second forces exit; sigaction installs the handler without SA_RESTART
/// so poll() wakes with EINTR the moment one arrives.
volatile sig_atomic_t DrainSignals = 0;

void drainSignalHandler(int) { ++DrainSignals; }

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

/// Monotonic milliseconds (deadline arithmetic).
int64_t nowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Appends response bytes to the session's output queue.
struct QueueSink : TraceSink {
  std::vector<uint8_t> *Q = nullptr;
  bool write(const uint8_t *Data, size_t Len) override {
    Q->insert(Q->end(), Data, Data + Len);
    return true;
  }
};

/// A lane-state snapshot at a frame boundary.
struct Checkpoint {
  unsigned Instant = 0;
  std::vector<Value> State;
};

/// What survives a disconnected session for a later resume.
struct Parked {
  uint64_t Token = 0;
  unsigned Id = 0; ///< The original session id (diagnostics).
  TraceSpec Spec;
  std::deque<Checkpoint> Checkpoints;
};

struct Session {
  int Fd = -1;
  unsigned Id = 0;   ///< Monotone session number (diagnostics).
  unsigned Lane = 0; ///< Fleet instance this session owns.
  uint64_t Token = 0;

  // Inbound stream.
  std::vector<uint8_t> In;
  size_t InPos = 0;      ///< Consumed prefix of In.
  uint64_t InOffset = 0; ///< Stream offset of In[InPos] (diagnostics).
  bool InEof = false;    ///< No more inbound bytes will ever arrive.
  bool PreambleDone = false; ///< Resume-or-fresh decided.
  bool HeaderDone = false;
  bool TrailerSeen = false;
  unsigned Total = 0; ///< Declared total instants (once TrailerSeen).

  /// Parked state this connection resumes (set while parsing the
  /// preamble, consumed when the header arrives).
  std::optional<Parked> Resume;

  // Execution.
  std::unique_ptr<StreamEnvironment> Env;
  unsigned StartInstant = 0; ///< 0, or the resume point.
  unsigned Executed = 0;     ///< Absolute instant cursor.
  bool Finished = false;     ///< Response trailer (or reject) written.
  const char *FinKind = "clean"; ///< Teardown label once flushed.
  uint64_t GuardTests = 0, Instrs = 0;
  std::deque<Checkpoint> Checkpoints;

  // Deadlines (monotonic ms of the last inbound/outbound progress).
  int64_t LastInMs = 0, LastOutMs = 0;

  // Outbound stream.
  QueueSink Sink;
  std::unique_ptr<TraceWriter> Echo;
  std::vector<uint8_t> Out;
  size_t OutPos = 0;

  size_t queuedBytes() const { return Out.size() - OutPos; }
};

class Server {
public:
  Server(const CompiledStep &CS, const std::string &ProcName,
         const ServeOptions &Opts)
      : CS(CS), Opts(Opts), Expected(TraceSpec::fromStep(CS, ProcName)),
        Exec(CS, Opts.MaxSessions), Envs(Opts.MaxSessions, nullptr),
        Slots(Opts.MaxSessions) {
    for (unsigned L = 0; L < Opts.MaxSessions; ++L)
      FreeLanes.push_back(Opts.MaxSessions - 1 - L);
  }

  int run();

private:
  void acceptClients();
  void rejectConnection(int Fd, ServeRejectReason Reason,
                        const std::string &Message);
  void readSession(Session &S);
  bool parseSession(Session &S); ///< False: session torn down.
  bool parsePreamble(Session &S, bool &Progress); ///< False: torn down.
  bool parseHeader(Session &S, bool &Progress);   ///< False: torn down.
  void queueReject(Session &S, ServeRejectReason Reason,
                   const std::string &Message, const char *Kind);
  void pushCheckpoint(Session &S);
  bool stepSession(Session &S);  ///< True when progress was made.
  void sendSession(Session &S);
  void teardown(Session &S, const char *How);
  void forceTeardownAll(const char *How);
  void checkDeadlines(int64_t Now);
  int pollTimeout(bool Runnable, int64_t Now) const;

  bool resumeEnabled() const { return Opts.MaxParkedSessions > 0; }
  /// The inbound run-ahead window one session reserves against the
  /// global batch budget at admission.
  uint64_t sessionReservation() const {
    return static_cast<uint64_t>(std::max(Opts.MaxAheadBatches, 1u)) *
           Opts.BatchInstants;
  }
  bool budgetExhausted() const {
    if (!Opts.BatchBudgetInstants)
      return false;
    unsigned Active = 0;
    for (const auto &Slot : Slots)
      Active += Slot != nullptr;
    return (Active + 1) * sessionReservation() > Opts.BatchBudgetInstants;
  }
  /// Inbound flow control: instants the resident frame window may run
  /// ahead of execution. At least one client-chosen frame, so parsing
  /// can always make progress.
  unsigned maxAheadInstants(const Session &S) const {
    unsigned Ahead = std::max(Opts.MaxAheadBatches, 1u) * Opts.BatchInstants;
    return std::max(Ahead, S.Env->streamSpec().FrameInstants);
  }
  /// True while the session's window is far enough ahead that reading
  /// and parsing should pause (the kernel buffer backpressures the
  /// client) until execution catches up.
  bool windowFull(const Session &S) const {
    return S.HeaderDone &&
           S.Env->residentEnd() >= S.Executed + maxAheadInstants(S);
  }
  Session *sessionAt(size_t Slot) { return Slots[Slot].get(); }

  const CompiledStep &CS;
  const ServeOptions &Opts;
  TraceSpec Expected;
  FleetExecutor Exec;
  std::vector<Environment *> Envs;
  std::vector<std::unique_ptr<Session>> Slots; ///< Indexed by lane.
  std::vector<unsigned> FreeLanes;
  std::deque<Parked> ParkedSessions; ///< Oldest first.
  int ListenFd = -1;
  unsigned NextId = 0;
  uint64_t NextToken = 0;
  unsigned Ended = 0;
  unsigned Rejected = 0, RejectedCapacity = 0, RejectedDraining = 0;
  bool Draining = false;
  int64_t DrainStartMs = 0;
  std::vector<uint8_t> CtrlBuf; ///< Reused control-frame encode buffer.
  size_t RR = 0; ///< Round-robin scan start.
  // Tiered native execution: the controller compiles/loads off the
  // serving thread; the swap lands at a wakeup boundary (between
  // stepLanes windows), so every session crosses tiers at a batch
  // boundary and checkpoints stay tier-agnostic.
  std::unique_ptr<TierController> Tier;
  bool TierSwapped = false;
  uint64_t TierVm = 0, TierNative = 0; ///< Instants stepped per tier.
};

void Server::teardown(Session &S, const char *How) {
  // Always printed: scripted drivers (and the CI smoke test) sum these.
  std::fprintf(stderr,
               "session %u: instants=%u outputs=%llu guard_tests=%llu "
               "executed=%llu (%s)\n",
               S.Id, S.Executed - S.StartInstant,
               static_cast<unsigned long long>(S.Env ? S.Env->outputCount()
                                                     : 0),
               static_cast<unsigned long long>(S.GuardTests),
               static_cast<unsigned long long>(S.Instrs), How);
  // A mid-stream loss of the client — not a protocol failure, and not a
  // drain — parks the session so the client can come back. Everything
  // resident was executed before we got here, so the newest checkpoint
  // is the exact frontier the client saw (or will see) outputs for.
  bool Recoverable = std::strcmp(How, "disconnected") == 0 ||
                     std::strncmp(How, "stalled", 7) == 0;
  if (resumeEnabled() && !Draining && Recoverable && S.HeaderDone &&
      !S.Checkpoints.empty()) {
    Parked P;
    P.Token = S.Token;
    P.Id = S.Id;
    P.Spec = S.Env->streamSpec();
    P.Checkpoints = std::move(S.Checkpoints);
    while (ParkedSessions.size() >= Opts.MaxParkedSessions)
      ParkedSessions.pop_front();
    std::fprintf(stderr, "session %u: parked at instant %u for resume\n",
                 S.Id, P.Checkpoints.back().Instant);
    ParkedSessions.push_back(std::move(P));
  }
  ::close(S.Fd);
  Envs[S.Lane] = nullptr;
  FreeLanes.push_back(S.Lane);
  Slots[S.Lane].reset();
  ++Ended;
}

void Server::forceTeardownAll(const char *How) {
  for (auto &Slot : Slots)
    if (Slot)
      teardown(*Slot, How);
}

void Server::rejectConnection(int Fd, ServeRejectReason Reason,
                              const std::string &Message) {
  // Best effort on a connection we never admitted: one nonblocking send
  // of the typed reject frame, then close. No per-connection state is
  // allocated — CtrlBuf is reused — so a reject storm cannot grow the
  // server.
  CtrlBuf.clear();
  ServeCtrl C;
  C.Type = ServeCtrlType::Reject;
  C.Reason = Reason;
  C.Message = Message;
  encodeServeCtrl(C, CtrlBuf);
  (void)::send(Fd, CtrlBuf.data(), CtrlBuf.size(), MSG_NOSIGNAL);
  ::close(Fd);
  ++Rejected;
  if (Reason == ServeRejectReason::Draining)
    ++RejectedDraining;
  else
    ++RejectedCapacity;
  std::fprintf(stderr, "rejected connection (%s): %s\n",
               serveRejectReasonName(Reason), Message.c_str());
}

void Server::acceptClients() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return; // EAGAIN (or a transient error): try again next wakeup.
    if (!setNonBlocking(Fd)) {
      ::close(Fd);
      continue;
    }
    if (Draining) {
      rejectConnection(Fd, ServeRejectReason::Draining,
                       "server is draining");
      continue;
    }
    if (FreeLanes.empty()) {
      rejectConnection(Fd, ServeRejectReason::AtCapacity,
                       "no free session lane");
      continue;
    }
    if (budgetExhausted()) {
      rejectConnection(Fd, ServeRejectReason::AtCapacity,
                       "batch budget exhausted");
      continue;
    }
    if (Opts.SessionLimit && NextId >= Opts.SessionLimit) {
      rejectConnection(Fd, ServeRejectReason::AtCapacity,
                       "session limit reached");
      continue;
    }
    if (Opts.SendBufBytes) {
      int Buf = static_cast<int>(Opts.SendBufBytes);
      ::setsockopt(Fd, SOL_SOCKET, SO_SNDBUF, &Buf, sizeof(Buf));
    }
    unsigned Lane = FreeLanes.back();
    FreeLanes.pop_back();
    auto S = std::make_unique<Session>();
    S->Fd = Fd;
    S->Id = NextId++;
    S->Lane = Lane;
    S->LastInMs = S->LastOutMs = nowMs();
    Slots[Lane] = std::move(S);
  }
}

void Server::readSession(Session &S) {
  uint8_t Buf[1 << 16];
  bool Any = false;
  while (!S.InEof) {
    ssize_t N = ::recv(S.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      S.In.insert(S.In.end(), Buf, Buf + N);
      Any = true;
      if (static_cast<size_t>(N) == sizeof(Buf))
        continue; // More may be pending.
      break;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      break;
    if (N < 0 && errno == EINTR)
      continue;
    // EOF or a hard error: nothing further will arrive, but bytes
    // already buffered may still hold complete frames — even the
    // trailer, when the client half-closes right after sending it.
    // parseSession decides whether this was a mid-stream disconnect.
    S.InEof = true;
  }
  if (Any)
    S.LastInMs = nowMs();
  if (!parseSession(S))
    return;
  // Reclaim the consumed prefix once it dominates the buffer.
  if (S.InPos > (64u << 10) && S.InPos > S.In.size() / 2) {
    S.In.erase(S.In.begin(), S.In.begin() + static_cast<long>(S.InPos));
    S.InPos = 0;
  }
}

void Server::queueReject(Session &S, ServeRejectReason Reason,
                         const std::string &Message, const char *Kind) {
  CtrlBuf.clear();
  ServeCtrl C;
  C.Type = ServeCtrlType::Reject;
  C.Reason = Reason;
  C.Message = Message;
  encodeServeCtrl(C, CtrlBuf);
  S.Sink.Q = &S.Out;
  S.Out.insert(S.Out.end(), CtrlBuf.begin(), CtrlBuf.end());
  S.Finished = true;
  S.FinKind = Kind;
  // Stop reading: the stream is refused whatever else the client sends.
  S.InEof = true;
}

/// Decides resume-vs-fresh from the first bytes of the connection.
/// Returns false when the session was torn down; \p Progress is set
/// when bytes were consumed or the decision was made.
bool Server::parsePreamble(Session &S, bool &Progress) {
  if (S.In.size() - S.InPos < 4) {
    if (!S.InEof)
      return true; // Wait for the magic.
    std::fprintf(stderr, "session %u: offset %llu: stream ends before a "
                         "preamble or trace header\n",
                 S.Id, static_cast<unsigned long long>(S.InOffset));
    teardown(S, "disconnected");
    return false;
  }
  if (std::memcmp(S.In.data() + S.InPos, ServeCtrlMagic, 4) != 0) {
    // A plain trace header: a fresh session.
    S.PreambleDone = true;
    Progress = true;
    return true;
  }
  ServeCtrl C;
  size_t Consumed = 0;
  TraceError Err;
  TraceFrameStatus St =
      decodeServeCtrl(S.In.data() + S.InPos, S.In.size() - S.InPos,
                      S.InOffset, C, Consumed, Err);
  if (St == TraceFrameStatus::NeedMore) {
    if (S.InEof) {
      std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
      teardown(S, "disconnected");
      return false;
    }
    return true;
  }
  if (St == TraceFrameStatus::Error) {
    std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
    teardown(S, "protocol error");
    return false;
  }
  S.InPos += Consumed;
  S.InOffset += Consumed;
  S.PreambleDone = true;
  Progress = true;
  if (C.Type != ServeCtrlType::Resume) {
    std::fprintf(stderr,
                 "session %u: unexpected control frame type %u (only "
                 "Resume is accepted from clients)\n",
                 S.Id, static_cast<unsigned>(C.Type));
    teardown(S, "protocol error");
    return false;
  }
  auto It = std::find_if(ParkedSessions.begin(), ParkedSessions.end(),
                         [&](const Parked &P) { return P.Token == C.Token; });
  if (It == ParkedSessions.end()) {
    queueReject(S, ServeRejectReason::BadResume,
                "unknown or expired session token", "resume rejected");
    return true;
  }
  if (traceSpecHash(It->Spec) != C.InterfaceHash) {
    queueReject(S, ServeRejectReason::InterfaceMismatch,
                "resume interface hash does not match the parked session",
                "resume rejected");
    return true;
  }
  auto Ck = std::find_if(It->Checkpoints.begin(), It->Checkpoints.end(),
                         [&](const Checkpoint &K) {
                           return K.Instant == C.ResumeInstant;
                         });
  if (Ck == It->Checkpoints.end()) {
    queueReject(S, ServeRejectReason::BadResume,
                "no checkpoint at instant " +
                    std::to_string(C.ResumeInstant),
                "resume rejected");
    return true;
  }
  // Checkpoints above the resume point are about to be re-executed from
  // possibly different stimulus: drop them.
  It->Checkpoints.erase(Ck + 1, It->Checkpoints.end());
  S.Resume = std::move(*It);
  ParkedSessions.erase(It);
  std::fprintf(stderr, "session %u: resuming session %u at instant %u\n",
               S.Id, S.Resume->Id, C.ResumeInstant);
  return true;
}

/// Parses and validates the trace header, then sets the session up for
/// execution (fresh or resumed). Returns false when torn down.
bool Server::parseHeader(Session &S, bool &Progress) {
  TraceSpec Spec;
  size_t HeaderLen = 0;
  TraceError Err;
  if (!parseTraceHeader(S.In.data() + S.InPos, S.In.size() - S.InPos, Spec,
                        HeaderLen, Err)) {
    if (Err.needMoreData()) {
      if (S.InEof) {
        // The stream ended inside the header: a real disconnect.
        std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
        teardown(S, "disconnected");
        return false;
      }
      if (S.In.size() - S.InPos > MaxHeaderBytes) {
        std::fprintf(stderr, "session %u: header exceeds %zu bytes\n", S.Id,
                     MaxHeaderBytes);
        teardown(S, "protocol error");
        return false;
      }
      return true; // Wait for more bytes.
    }
    std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
    teardown(S, "protocol error");
    return false;
  }
  TraceSpec Check = TraceSpec::fromStep(CS, Spec.ProcName,
                                        Spec.FrameInstants);
  std::string Diff = Spec.diff(Check);
  if (!Diff.empty()) {
    std::fprintf(stderr,
                 "session %u: trace interface does not match the served "
                 "process: %s\n",
                 S.Id, Diff.c_str());
    queueReject(S, ServeRejectReason::InterfaceMismatch,
                "trace interface does not match the served process: " + Diff,
                "interface mismatch");
    Progress = true;
    return true;
  }
  if (S.Resume && Spec != S.Resume->Spec) {
    std::fprintf(stderr,
                 "session %u: resume header differs from the parked "
                 "session's (frame capacity or interface changed)\n",
                 S.Id);
    queueReject(S, ServeRejectReason::InterfaceMismatch,
                "resume header differs from the parked session's",
                "resume rejected");
    Progress = true;
    return true;
  }
  S.InPos += HeaderLen;
  S.InOffset += HeaderLen;
  S.HeaderDone = true;
  Progress = true;
  unsigned R0 = S.Resume ? S.Resume->Checkpoints.back().Instant : 0;
  S.Env = std::make_unique<StreamEnvironment>(Spec);
  S.Sink.Q = &S.Out;
  // Hello first: the session is admitted, and the token is what a
  // future Resume must present.
  S.Token = S.Resume ? S.Resume->Token : ++NextToken;
  CtrlBuf.clear();
  ServeCtrl Hello;
  Hello.Type = ServeCtrlType::Hello;
  Hello.Token = S.Token;
  encodeServeCtrl(Hello, CtrlBuf);
  S.Out.insert(S.Out.end(), CtrlBuf.begin(), CtrlBuf.end());
  // The response stream: an outputs-only trace with the same frame
  // capacity the client chose. A resumed session continues the original
  // stream headerless from the resume point, so the concatenated
  // connections are one byte-identical stream.
  S.Echo = std::make_unique<TraceWriter>(S.Sink, Spec.outputsOnly(), R0,
                                         /*EmitHeader=*/!S.Resume);
  S.Env->setEcho(S.Echo.get());
  Exec.resetLanes(S.Lane, 1);
  Envs[S.Lane] = S.Env.get();
  S.StartInstant = S.Executed = R0;
  if (S.Resume) {
    S.Env->rebase(R0);
    Exec.restoreLaneState(S.Lane, S.Resume->Checkpoints.back().State);
    S.Checkpoints = std::move(S.Resume->Checkpoints);
    S.Resume.reset();
  } else if (resumeEnabled()) {
    pushCheckpoint(S);
  }
  return true;
}

void Server::pushCheckpoint(Session &S) {
  Checkpoint K;
  if (S.Checkpoints.size() >= std::max(Opts.ResumeCheckpoints, 1u)) {
    K = std::move(S.Checkpoints.front()); // Recycle the state buffer.
    S.Checkpoints.pop_front();
  }
  K.Instant = S.Executed;
  Exec.saveLaneState(S.Lane, K.State);
  S.Checkpoints.push_back(std::move(K));
}

bool Server::parseSession(Session &S) {
  bool Progress = false;
  if (!S.PreambleDone && !parsePreamble(S, Progress))
    return false;
  if (!S.PreambleDone || S.Finished)
    return true;
  if (!S.HeaderDone && !parseHeader(S, Progress))
    return false;
  if (!S.HeaderDone || S.Finished)
    return true;
  // Inbound flow control: stop decoding (leaving bytes buffered and, via
  // the poll loop, unread in the kernel) once the resident window is far
  // enough ahead of execution; the scheduler resumes parsing after each
  // batch it executes.
  while (!S.TrailerSeen && !windowFull(S)) {
    TraceFrame F = S.Env->takeRecycledFrame();
    size_t Consumed = 0;
    TraceError Err;
    TraceFrameStatus St =
        decodeTraceFrame(S.Env->streamSpec(), S.In.data() + S.InPos,
                         S.In.size() - S.InPos, S.InOffset, F, Consumed,
                         S.Total, Err);
    if (St == TraceFrameStatus::NeedMore) {
      if (S.InEof) {
        // The stream ended mid-frame with no trailer: a disconnect.
        std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
        teardown(S, "disconnected");
        return false;
      }
      return true;
    }
    if (St == TraceFrameStatus::Error) {
      std::fprintf(stderr, "session %u: %s\n", S.Id, Err.str().c_str());
      teardown(S, "protocol error");
      return false;
    }
    S.InPos += Consumed;
    S.InOffset += Consumed;
    if (St == TraceFrameStatus::End) {
      if (S.Total != S.Env->residentEnd()) {
        std::fprintf(stderr,
                     "session %u: trailer declares %u instants but frames "
                     "covered %u\n",
                     S.Id, S.Total, S.Env->residentEnd());
        teardown(S, "protocol error");
        return false;
      }
      S.TrailerSeen = true;
      return true;
    }
    if (F.Start != S.Env->residentEnd()) {
      std::fprintf(stderr,
                   "session %u: frame starts at instant %u, expected %u\n",
                   S.Id, F.Start, S.Env->residentEnd());
      teardown(S, "protocol error");
      return false;
    }
    S.Env->pushFrame(std::move(F));
  }
  return true;
}

bool Server::stepSession(Session &S) {
  if (!S.HeaderDone || S.Finished)
    return false;
  unsigned Resident = S.Env->residentEnd();
  if (S.Executed < Resident && S.queuedBytes() <= Opts.MaxQueuedBytes) {
    unsigned N = std::min(Opts.BatchInstants, Resident - S.Executed);
    if (resumeEnabled()) {
      // Land every batch on a frame boundary, so a checkpoint exists at
      // each one; only the stream's final partial frame may end between
      // boundaries (and is then past every resumable point anyway).
      unsigned W = S.Env->streamSpec().FrameInstants;
      N = std::min(N, W - S.Executed % W);
    }
    uint64_t G0 = Exec.guardTests(), E0 = Exec.executed();
    Exec.stepLanes(Envs, S.Lane, 1, S.Executed, N);
    S.GuardTests += Exec.guardTests() - G0;
    S.Instrs += Exec.executed() - E0;
    if (Tier)
      (TierSwapped ? TierNative : TierVm) += N;
    S.Executed += N;
    S.Env->release(S.Executed);
    if (resumeEnabled() &&
        S.Executed % S.Env->streamSpec().FrameInstants == 0)
      pushCheckpoint(S);
    return true;
  }
  if (S.TrailerSeen && S.Executed == S.Total) {
    S.Echo->finish(S.Total);
    S.Finished = true;
    return true;
  }
  if (Draining && S.Executed == Resident) {
    // Graceful drain: everything resident has executed and flushed into
    // the queue; close the response stream with an early trailer so the
    // client sees a well-formed (if shortened) trace.
    S.Echo->finish(S.Executed);
    S.Finished = true;
    S.FinKind = "drained";
    return true;
  }
  return false;
}

void Server::sendSession(Session &S) {
  bool Any = false;
  while (S.OutPos < S.Out.size()) {
    ssize_t N = ::send(S.Fd, S.Out.data() + S.OutPos, S.Out.size() - S.OutPos,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (Any)
          S.LastOutMs = nowMs();
        return;
      }
      teardown(S, "disconnected");
      return;
    }
    S.OutPos += static_cast<size_t>(N);
    Any = true;
  }
  S.Out.clear();
  S.OutPos = 0;
  S.LastOutMs = nowMs();
  if (S.Finished)
    teardown(S, S.FinKind);
}

void Server::checkDeadlines(int64_t Now) {
  for (size_t L = 0; L < Slots.size(); ++L) {
    Session *S = sessionAt(L);
    if (!S)
      continue;
    if (Opts.WriteTimeoutMs && S->queuedBytes() > 0 &&
        Now - S->LastOutMs >= static_cast<int64_t>(Opts.WriteTimeoutMs)) {
      std::fprintf(stderr,
                   "session %u: client accepted no output for %u ms "
                   "(%zu bytes queued)\n",
                   S->Id, Opts.WriteTimeoutMs, S->queuedBytes());
      teardown(*S, "stalled (write timeout)");
      continue;
    }
    // Idle: the session is waiting on stimulus it is not receiving.
    bool AwaitingInbound =
        !S->InEof && !S->TrailerSeen && !windowFull(*S) &&
        (!S->HeaderDone || S->Executed == S->Env->residentEnd());
    if (Opts.IdleTimeoutMs && !Draining && AwaitingInbound &&
        Now - S->LastInMs >= static_cast<int64_t>(Opts.IdleTimeoutMs)) {
      std::fprintf(stderr, "session %u: no stimulus for %u ms\n", S->Id,
                   Opts.IdleTimeoutMs);
      teardown(*S, "stalled (idle timeout)");
    }
  }
}

int Server::pollTimeout(bool Runnable, int64_t Now) const {
  if (Runnable)
    return 0;
  int64_t Next = -1;
  auto Consider = [&](int64_t Deadline) {
    if (Next < 0 || Deadline < Next)
      Next = Deadline;
  };
  for (const auto &Slot : Slots) {
    const Session *S = Slot.get();
    if (!S)
      continue;
    if (Opts.WriteTimeoutMs && S->queuedBytes() > 0)
      Consider(S->LastOutMs + Opts.WriteTimeoutMs);
    bool AwaitingInbound =
        !S->InEof && !S->TrailerSeen && !windowFull(*S) &&
        (!S->HeaderDone || S->Executed == S->Env->residentEnd());
    if (Opts.IdleTimeoutMs && !Draining && AwaitingInbound)
      Consider(S->LastInMs + Opts.IdleTimeoutMs);
  }
  if (Draining && Opts.DrainGraceMs)
    Consider(DrainStartMs + Opts.DrainGraceMs);
  if (Next < 0)
    return -1;
  return static_cast<int>(std::max<int64_t>(Next - Now, 0));
}

int Server::run() {
  if (Opts.Tier.Mode != NativeMode::Off) {
    Tier = std::make_unique<TierController>(CS, Opts.Tier);
    if (!Tier->start()) {
      std::fprintf(stderr, "signalc: --native force failed: %s\n",
                   Tier->error().c_str());
      return 2;
    }
  }
  if (Opts.SocketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "signalc: socket path too long: %s\n",
                 Opts.SocketPath.c_str());
    return 2;
  }
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    std::fprintf(stderr, "signalc: socket: %s\n", std::strerror(errno));
    return 2;
  }
  ::unlink(Opts.SocketPath.c_str());
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Opts.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFd, 64) < 0 || !setNonBlocking(ListenFd)) {
    std::fprintf(stderr, "signalc: cannot serve on %s: %s\n",
                 Opts.SocketPath.c_str(), std::strerror(errno));
    ::close(ListenFd);
    return 2;
  }
  // SIGTERM/SIGINT drive the drain state machine; no SA_RESTART, so the
  // poll below wakes immediately.
  DrainSignals = 0;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = drainSignalHandler;
  ::sigemptyset(&SA.sa_mask);
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  std::fprintf(stderr,
               "serving %s on %s (max %u sessions, batch %u)\n",
               Expected.ProcName.c_str(), Opts.SocketPath.c_str(),
               Opts.MaxSessions, Opts.BatchInstants);

  int Exit = 0;
  std::vector<pollfd> Polls;
  std::vector<size_t> PollSlot; // Poll index -> lane (listen fd excluded).
  for (;;) {
    if (DrainSignals >= 2) {
      std::fprintf(stderr, "second signal: forcing exit\n");
      forceTeardownAll("forced");
      Exit = 1;
      break;
    }
    if (DrainSignals && !Draining) {
      Draining = true;
      DrainStartMs = nowMs();
      unsigned Active = 0;
      for (auto &Slot : Slots)
        Active += Slot != nullptr;
      std::fprintf(stderr,
                   "draining: finishing %u session(s), rejecting new "
                   "connections\n",
                   Active);
      // Sessions that never completed a header have nothing to flush.
      for (auto &Slot : Slots)
        if (Slot && !Slot->HeaderDone)
          teardown(*Slot, "drained");
    }
    if (Draining) {
      bool Active = false;
      for (auto &Slot : Slots)
        Active |= Slot != nullptr;
      if (!Active)
        break;
      if (Opts.DrainGraceMs && nowMs() - DrainStartMs >=
                                   static_cast<int64_t>(Opts.DrainGraceMs)) {
        std::fprintf(stderr, "drain grace expired: forcing exit\n");
        forceTeardownAll("forced");
        break;
      }
    }

    // Tier promotion lands here, at a wakeup boundary: every session is
    // between batches, so the fleet-wide swap is a batch-boundary
    // handoff for each of them and resume checkpoints stay
    // tier-agnostic.
    if (Tier && !TierSwapped && Tier->shouldPromote(TierVm)) {
      Exec.setNative(Tier->module());
      TierSwapped = true;
      std::fprintf(stderr, "tier: sessions now run native (%s, hash %s)\n",
                   Tier->cacheHit() ? "cache hit" : "background compile",
                   Tier->hash().c_str());
    }
    if (Opts.SessionLimit && Ended >= Opts.SessionLimit) {
      bool Active = false;
      for (auto &Slot : Slots)
        Active |= Slot != nullptr;
      if (!Active)
        break;
    }

    Polls.clear();
    PollSlot.clear();
    // The listen fd is always polled: admission (or a typed reject)
    // happens at accept time, so even a saturated or limit-bound server
    // answers every connection instead of leaving it queued.
    Polls.push_back({ListenFd, POLLIN, 0});
    bool Runnable = false;
    for (size_t L = 0; L < Slots.size(); ++L) {
      Session *S = sessionAt(L);
      if (!S)
        continue;
      short Ev = 0;
      // Inbound flow control: while the resident window is full (or the
      // stream already ended, or the server is draining), leave arriving
      // bytes in the kernel buffer so the client blocks in send instead
      // of growing our memory.
      if (!S->TrailerSeen && !S->InEof && !windowFull(*S) && !Draining)
        Ev |= POLLIN;
      if (S->queuedBytes() > 0)
        Ev |= POLLOUT;
      Polls.push_back({S->Fd, Ev, 0});
      PollSlot.push_back(L);
      if (S->HeaderDone && !S->Finished &&
          ((S->Executed < S->Env->residentEnd() &&
            S->queuedBytes() <= Opts.MaxQueuedBytes) ||
           (S->TrailerSeen && S->Executed == S->Total) ||
           (Draining && S->Executed == S->Env->residentEnd())))
        Runnable = true;
    }

    int64_t Now = nowMs();
    int Ready = ::poll(Polls.data(), Polls.size(),
                       pollTimeout(Runnable, Now));
    if (Ready < 0) {
      if (errno == EINTR)
        continue; // A signal: the loop top reevaluates the drain state.
      std::fprintf(stderr, "signalc: poll: %s\n", std::strerror(errno));
      break;
    }
    checkDeadlines(nowMs());

    if (Polls[0].revents & POLLIN)
      acceptClients();
    for (size_t P = 1; P < Polls.size(); ++P) {
      Session *S = sessionAt(PollSlot[P - 1]);
      if (!S || S->Fd != Polls[P].fd)
        continue; // Torn down while handling an earlier event.
      if (Polls[P].revents & (POLLIN | POLLHUP | POLLERR))
        readSession(*S);
      S = sessionAt(PollSlot[P - 1]);
      if (S && S->Fd == Polls[P].fd &&
          (Polls[P].revents & (POLLOUT | POLLHUP | POLLERR)) &&
          S->queuedBytes() > 0)
        sendSession(*S);
    }

    // Scheduler pass: advance every runnable session by one batch, fair
    // round-robin (the scan starts one lane later each wakeup).
    size_t NumSlots = Slots.size();
    RR = NumSlots ? (RR + 1) % NumSlots : 0;
    for (size_t Scan = 0; Scan < NumSlots; ++Scan) {
      size_t L = (RR + Scan) % NumSlots;
      Session *S = sessionAt(L);
      if (!S)
        continue;
      // A freshly rejected session may have its frame queued with no
      // poll event pending: flush eagerly.
      bool Stepped = stepSession(*S);
      if (!Stepped && S->queuedBytes() == 0)
        continue;
      // Execution advanced: buffered inbound bytes that flow control
      // paused may be parseable now (stepSession never tears down, so S
      // is still live here; parseSession may).
      if (Stepped && !S->TrailerSeen && S->In.size() > S->InPos &&
          !parseSession(*S))
        continue;
      // Push what the batch produced without waiting for POLLOUT.
      S = sessionAt(L);
      if (S && S->queuedBytes() > 0)
        sendSession(*S);
    }
  }

  ::close(ListenFd);
  ::unlink(Opts.SocketPath.c_str());
  if (Rejected)
    std::fprintf(stderr,
                 "rejected %u connection(s) (at capacity %u, draining %u)\n",
                 Rejected, RejectedCapacity, RejectedDraining);
  if (Tier)
    std::fprintf(stderr,
                 "tier: vm_instants=%llu native_instants=%llu cache=%s%s%s\n",
                 static_cast<unsigned long long>(TierVm),
                 static_cast<unsigned long long>(TierNative),
                 Tier->cacheHit() ? "hit" : "miss",
                 Tier->error().empty() ? "" : " error=",
                 Tier->error().c_str());
  std::fprintf(stderr, "served %u session(s)%s\n", Ended,
               Draining ? " (drained)" : "");
  return Exit;
}

} // namespace

int sigc::runTraceServer(const CompiledStep &CS, const std::string &ProcName,
                         const ServeOptions &Opts) {
  return Server(CS, ProcName, Opts).run();
}
