//===--- FaultInjection.h - Deterministic I/O fault injection ---*- C++-*-===//
///
/// \file
/// A scripted stand-in for the read(2)/write(2) layer the trace I/O
/// classes sit on, so every failure path — short reads and writes, EINTR
/// storms, mid-stream truncation, byte corruption, ENOSPC/EPIPE — lands
/// with a pinned, reproducible test instead of a flaky sleep-based one.
///
/// FdTraceSource and FdSink take an optional IoSyscalls; production code
/// passes nothing and gets the real syscalls. Tests pass a FaultSyscalls
/// driven by a FaultPlan:
///
///   * per-call schedules (Reads/Writes) decide each call's fate in
///     order — pass it through, clamp it short, fail it with a chosen
///     errno, return EINTR, or declare EOF; past the end of a schedule
///     the Tail op repeats (so "byte-at-a-time forever" is one line);
///   * byte-positioned faults overlay the schedule: TruncateReadAt ends
///     the stream at an exact offset, CorruptReadAt flips bits in one
///     byte on its way through, FailWriteAt fails the write that would
///     produce a given byte (everything before it is written, so the
///     sink's byte-offset diagnostic can be asserted exactly).
///
/// The wrapped fd is real: reads and writes that the plan lets through
/// hit the kernel, which keeps the decoding classes honest about
/// buffering and offsets. Counters record what actually happened for the
/// tests to assert on. Everything is deterministic — no timers, no
/// threads, no randomness.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_IO_FAULTINJECTION_H
#define SIGNALC_IO_FAULTINJECTION_H

#include <cstddef>
#include <cstdint>
#include <sys/types.h>
#include <utility>
#include <vector>

namespace sigc {

/// The syscall layer FdTraceSource/FdSink read and write through.
/// Implementations must preserve read(2)/write(2) semantics (return
/// count, 0 for EOF, -1 with errno set).
class IoSyscalls {
public:
  virtual ~IoSyscalls();
  virtual ssize_t read(int Fd, void *Buf, size_t Len);
  virtual ssize_t write(int Fd, const void *Buf, size_t Len);

  /// The passthrough instance production code uses.
  static IoSyscalls &system();
};

/// What one scheduled call does.
struct FaultOp {
  enum Kind {
    Pass,  ///< Real syscall, untouched.
    Short, ///< Real syscall, length clamped to Max bytes.
    Eintr, ///< No syscall: fail with EINTR (the retry-loop storm).
    Fail,  ///< No syscall: fail with Errno.
    Eof,   ///< Reads only: report end of stream.
  };
  Kind K = Pass;
  size_t Max = 0; ///< Short: bytes the call may move.
  int Errno = 0;  ///< Fail: the errno to report.

  static FaultOp pass() { return {}; }
  static FaultOp shortIo(size_t Max) { return {Short, Max, 0}; }
  static FaultOp eintr() { return {Eintr, 0, 0}; }
  static FaultOp fail(int Errno) { return {Fail, 0, Errno}; }
  static FaultOp eof() { return {Eof, 0, 0}; }
};

/// Marker for "no byte-positioned fault".
constexpr uint64_t FaultNoByte = ~static_cast<uint64_t>(0);

/// The script a FaultSyscalls executes.
struct FaultPlan {
  /// Per-call fates, consumed in order; Tail repeats afterwards.
  std::vector<FaultOp> Reads, Writes;
  FaultOp ReadTail = FaultOp::pass();
  FaultOp WriteTail = FaultOp::pass();

  /// The read stream ends (EOF) at exactly this byte offset.
  uint64_t TruncateReadAt = FaultNoByte;
  /// The byte at this read offset is XORed with CorruptXor in flight.
  uint64_t CorruptReadAt = FaultNoByte;
  uint8_t CorruptXor = 0xFF;
  /// The write that would produce this byte offset fails with
  /// FailWriteErrno; bytes below the offset are written for real.
  uint64_t FailWriteAt = FaultNoByte;
  int FailWriteErrno = 0;
};

/// Applies a FaultPlan over the real syscalls, deterministically.
class FaultSyscalls : public IoSyscalls {
public:
  explicit FaultSyscalls(FaultPlan Plan) : Plan(std::move(Plan)) {}

  ssize_t read(int Fd, void *Buf, size_t Len) override;
  ssize_t write(int Fd, const void *Buf, size_t Len) override;

  /// What actually happened, for assertions.
  uint64_t readCalls() const { return ReadCalls; }
  uint64_t writeCalls() const { return WriteCalls; }
  uint64_t readBytes() const { return ReadPos; }
  uint64_t writtenBytes() const { return WritePos; }
  uint64_t eintrReturns() const { return EintrReturns; }

private:
  FaultOp nextOp(const std::vector<FaultOp> &Sched, const FaultOp &Tail,
                 uint64_t Call) const;

  FaultPlan Plan;
  uint64_t ReadCalls = 0, WriteCalls = 0;
  uint64_t ReadPos = 0, WritePos = 0; ///< Stream offsets moved so far.
  uint64_t EintrReturns = 0;
};

} // namespace sigc

#endif // SIGNALC_IO_FAULTINJECTION_H
