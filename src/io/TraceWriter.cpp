//===--- TraceWriter.cpp --------------------------------------------------===//

#include "io/TraceWriter.h"

#include "io/FaultInjection.h"

#include <cassert>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace sigc;

TraceSink::~TraceSink() = default;

FdSink::FdSink(int Fd, bool OwnsFd, IoSyscalls *Sys)
    : Fd(Fd), OwnsFd(OwnsFd), Sys(Sys ? Sys : &IoSyscalls::system()) {}

FdSink::~FdSink() {
  if (OwnsFd && Fd >= 0)
    ::close(Fd);
}

bool FdSink::write(const uint8_t *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = Sys->write(Fd, Data, Len);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      // Position the diagnostic at the first byte that did not reach
      // the descriptor — everything below Written is on the sink.
      if (Detail.empty())
        Detail = "at byte " + std::to_string(Written) + ": " +
                 std::strerror(errno);
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
    Written += static_cast<uint64_t>(N);
  }
  return true;
}

int FdSink::openFile(const std::string &Path, std::string &Error) {
  int Fd = ::open(Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0)
    Error = std::strerror(errno);
  return Fd;
}

TraceWriter::TraceWriter(TraceSink &Sink, TraceSpec Spec)
    : TraceWriter(Sink, std::move(Spec), 0, /*EmitHeader=*/true) {}

TraceWriter::TraceWriter(TraceSink &Sink, TraceSpec Spec,
                         unsigned StartInstant, bool EmitHeader)
    : Sink(Sink), Spec(std::move(Spec)) {
  assert(StartInstant % this->Spec.FrameInstants == 0 &&
         "resumed streams continue at a frame boundary");
  FlushedInstants = StartInstant;
  if (EmitHeader)
    sinkBytes(encodeTraceHeader(this->Spec));
}

void TraceWriter::sinkBytes(const std::vector<uint8_t> &Bytes) {
  if (Ok && !Sink.write(Bytes.data(), Bytes.size()))
    Ok = false;
}

TraceFrame &TraceWriter::frameFor(unsigned Instant) {
  assert(!Finished && "trace writer already finished");
  assert(Instant >= FlushedInstants &&
         "data for an instant that already flushed");
  const unsigned W = Spec.FrameInstants;
  const unsigned FrameStart = (Instant / W) * W;
  unsigned NextStart =
      Pending.empty() ? FlushedInstants : Pending.back().Start + W;
  while (NextStart <= FrameStart) {
    // Recycle a retired frame buffer when one exists; its rows are
    // re-zeroed here (per frame, not per instant).
    if (!FreeFrames.empty()) {
      Pending.push_back(std::move(FreeFrames.back()));
      FreeFrames.pop_back();
    } else {
      Pending.emplace_back();
    }
    TraceFrame &F = Pending.back();
    F.shape(Spec);
    F.Start = NextStart;
    F.Count = 0;
    std::fill(F.ClockTicks.begin(), F.ClockTicks.end(), 0);
    std::fill(F.OutPresent.begin(), F.OutPresent.end(), 0);
    NextStart += W;
  }
  return Pending[(FrameStart - Pending.front().Start) / W];
}

void TraceWriter::putClockTicks(unsigned ClockIdx, unsigned Start,
                                unsigned Count, const unsigned char *Ticks) {
  const unsigned W = Spec.FrameInstants;
  unsigned I = 0;
  while (I < Count) {
    TraceFrame &F = frameFor(Start + I);
    unsigned Off = (Start + I) - F.Start;
    unsigned Take = std::min(Count - I, W - Off);
    std::memcpy(&F.ClockTicks[ClockIdx * static_cast<size_t>(F.Cap) + Off],
                Ticks + I, Take);
    I += Take;
  }
}

void TraceWriter::putInputValues(unsigned InputIdx, unsigned Start,
                                 unsigned Count, const Value *Vals) {
  const unsigned W = Spec.FrameInstants;
  unsigned I = 0;
  while (I < Count) {
    TraceFrame &F = frameFor(Start + I);
    unsigned Off = (Start + I) - F.Start;
    unsigned Take = std::min(Count - I, W - Off);
    Value *Row = &F.InputVals[InputIdx * static_cast<size_t>(F.Cap) + Off];
    for (unsigned J = 0; J < Take; ++J)
      Row[J] = Vals[I + J];
    I += Take;
  }
}

void TraceWriter::putOutput(unsigned OutputIdx, unsigned Instant,
                            const Value &V) {
  TraceFrame &F = frameFor(Instant);
  size_t At = OutputIdx * static_cast<size_t>(F.Cap) + (Instant - F.Start);
  F.OutPresent[At] = 1;
  F.OutVals[At] = V;
}

void TraceWriter::flushFrame(TraceFrame &F) {
  EncodeBuf.clear();
  encodeTraceFrame(Spec, F, EncodeBuf);
  sinkBytes(EncodeBuf);
}

void TraceWriter::completeThrough(unsigned End) {
  const unsigned W = Spec.FrameInstants;
  // Materialize coverage first: even a window that carried no data (a
  // process with no free clocks or inputs and silent outputs) must
  // produce its frames, or replay would see a gap in the instant line.
  if (End > FlushedInstants)
    frameFor(End - 1);
  while (!Pending.empty() && Pending.front().Start + W <= End) {
    TraceFrame &F = Pending.front();
    F.Count = W;
    flushFrame(F);
    FlushedInstants = F.Start + W;
    FreeFrames.push_back(std::move(F));
    Pending.pop_front();
  }
}

bool TraceWriter::finish(unsigned TotalInstants) {
  assert(!Finished && "trace writer finished twice");
  completeThrough(TotalInstants);
  if (!Pending.empty()) {
    TraceFrame &F = Pending.front();
    assert(F.Start < TotalInstants && "pending frame beyond the trace end");
    F.Count = TotalInstants - F.Start;
    flushFrame(F);
    FreeFrames.push_back(std::move(F));
    Pending.pop_front();
    assert(Pending.empty() && "data recorded beyond the declared trace end");
  }
  EncodeBuf.clear();
  encodeTraceTrailer(TotalInstants, EncodeBuf);
  sinkBytes(EncodeBuf);
  Finished = true;
  return Ok;
}
