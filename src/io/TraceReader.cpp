//===--- TraceReader.cpp --------------------------------------------------===//

#include "io/TraceReader.h"

#include "io/FaultInjection.h"

#include <cassert>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace sigc;

TraceSource::~TraceSource() = default;

//===----------------------------------------------------------------------===//
// MemoryTraceSource
//===----------------------------------------------------------------------===//

const uint8_t *MemoryTraceSource::peek(size_t, size_t &Avail, std::string &) {
  Avail = Len - Pos;
  // An empty buffer (e.g. a vector that never allocated) has no data
  // pointer; zero-length reads still need a non-null cursor so the
  // caller sees truncation, not an I/O failure.
  static const uint8_t Empty = 0;
  return Data ? Data + Pos : &Empty;
}

void MemoryTraceSource::consume(size_t N) {
  assert(N <= Len - Pos && "consumed past the end");
  Pos += N;
}

//===----------------------------------------------------------------------===//
// MmapTraceSource
//===----------------------------------------------------------------------===//

MmapTraceSource::~MmapTraceSource() {
  if (Map)
    ::munmap(const_cast<uint8_t *>(Map), Len);
}

bool MmapTraceSource::open(const std::string &Path, std::string &Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0) {
    Error = Path + ": " + std::strerror(errno);
    return false;
  }
  struct stat St;
  if (::fstat(Fd, &St) != 0) {
    Error = Path + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (!S_ISREG(St.st_mode)) {
    Error = Path + ": not a regular file (streams replay through the "
                   "buffered reader)";
    ::close(Fd);
    return false;
  }
  Len = static_cast<size_t>(St.st_size);
  if (Len > 0) {
    void *M = ::mmap(nullptr, Len, PROT_READ, MAP_PRIVATE, Fd, 0);
    if (M == MAP_FAILED) {
      Error = Path + ": mmap failed: " + std::strerror(errno);
      ::close(Fd);
      Len = 0;
      return false;
    }
    Map = static_cast<const uint8_t *>(M);
  }
  ::close(Fd);
  return true;
}

const uint8_t *MmapTraceSource::peek(size_t, size_t &Avail, std::string &) {
  Avail = Len - Pos;
  // An empty mapping still needs a non-null cursor for zero-length reads.
  static const uint8_t Empty = 0;
  return Map ? Map + Pos : &Empty;
}

void MmapTraceSource::consume(size_t N) {
  assert(N <= Len - Pos && "consumed past the end");
  Pos += N;
}

//===----------------------------------------------------------------------===//
// FdTraceSource
//===----------------------------------------------------------------------===//

FdTraceSource::FdTraceSource(int Fd, bool OwnsFd, size_t BufSize,
                             IoSyscalls *Sys)
    : Fd(Fd), OwnsFd(OwnsFd), Sys(Sys ? Sys : &IoSyscalls::system()),
      Buf(std::max<size_t>(BufSize, 4096)) {}

FdTraceSource::~FdTraceSource() {
  if (OwnsFd && Fd >= 0)
    ::close(Fd);
}

int FdTraceSource::openFile(const std::string &Path, std::string &Error) {
  int Fd = ::open(Path.c_str(), O_RDONLY);
  if (Fd < 0)
    Error = Path + ": " + std::strerror(errno);
  return Fd;
}

const uint8_t *FdTraceSource::peek(size_t Min, size_t &Avail,
                                   std::string &Error) {
  if (Min > Buf.size()) {
    // A frame larger than the ring: grow once (bounded by the format's
    // oversized-frame check upstream).
    std::vector<uint8_t> Grown(Min);
    std::memcpy(Grown.data(), Buf.data() + Begin, End - Begin);
    End -= Begin;
    Begin = 0;
    Buf = std::move(Grown);
  } else if (Begin + Min > Buf.size()) {
    std::memmove(Buf.data(), Buf.data() + Begin, End - Begin);
    End -= Begin;
    Begin = 0;
  }
  while (End - Begin < Min && !Eof) {
    ssize_t N = Sys->read(Fd, Buf.data() + End, Buf.size() - End);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Error = std::strerror(errno);
      return nullptr;
    }
    if (N == 0) {
      Eof = true;
      break;
    }
    End += static_cast<size_t>(N);
  }
  Avail = End - Begin;
  return Buf.data() + Begin;
}

void FdTraceSource::consume(size_t N) {
  assert(N <= End - Begin && "consumed past the end");
  Begin += N;
}

//===----------------------------------------------------------------------===//
// TraceReader
//===----------------------------------------------------------------------===//

bool TraceReader::readHeader() {
  assert(!HeaderRead && "header read twice");
  size_t Min = 16;
  for (;;) {
    std::string IoErr;
    size_t Avail = 0;
    const uint8_t *P = Source.peek(Min, Avail, IoErr);
    if (!P) {
      Err = {TraceErrorKind::Io, Offset, "read failed: " + IoErr};
      return false;
    }
    size_t HeaderLen = 0;
    if (parseTraceHeader(P, Avail, Spec, HeaderLen, Err)) {
      Source.consume(HeaderLen);
      Offset = HeaderLen;
      HeaderRead = true;
      return true;
    }
    if (Err.needMoreData() && Avail >= Min) {
      // The buffer holds everything we asked for but the header is
      // longer: ask for more. The header is bounded by the name and
      // descriptor limits, so this terminates.
      Min = Avail + 512;
      continue;
    }
    return false; // Real failure, or the stream genuinely ends early.
  }
}

bool TraceReader::matchesStep(const CompiledStep &CS) {
  assert(HeaderRead && "match before readHeader");
  TraceSpec Expected = TraceSpec::fromStep(CS, Spec.ProcName,
                                           Spec.FrameInstants);
  std::string Diff = Spec.diff(Expected);
  if (Diff.empty())
    return true;
  Err = {TraceErrorKind::InterfaceMismatch, Offset,
         "trace interface does not match the compiled process: " + Diff};
  return false;
}

TraceFrameStatus TraceReader::nextFrame(TraceFrame &F) {
  assert(HeaderRead && "frames before readHeader");
  size_t Min = TraceFrameHeaderBytes;
  for (;;) {
    std::string IoErr;
    size_t Avail = 0;
    const uint8_t *P = Source.peek(Min, Avail, IoErr);
    if (!P) {
      Err = {TraceErrorKind::Io, Offset, "read failed: " + IoErr};
      return TraceFrameStatus::Error;
    }
    size_t Consumed = 0;
    TraceFrameStatus St = decodeTraceFrame(Spec, P, Avail, Offset, F,
                                           Consumed, TotalInstants, Err);
    if (St == TraceFrameStatus::NeedMore) {
      if (Avail < Min)
        return TraceFrameStatus::Error; // Truncated: Err is positioned.
      // The frame header is visible; ask for its whole payload.
      uint32_t PayloadLen = static_cast<uint32_t>(P[0]) |
                            (static_cast<uint32_t>(P[1]) << 8) |
                            (static_cast<uint32_t>(P[2]) << 16) |
                            (static_cast<uint32_t>(P[3]) << 24);
      Min = TraceFrameHeaderBytes + PayloadLen;
      continue;
    }
    if (St == TraceFrameStatus::Error)
      return St;
    Source.consume(Consumed);
    Offset += Consumed;
    if (St == TraceFrameStatus::Frame) {
      if (F.Start != NextInstant) {
        Err = {TraceErrorKind::Malformed, Offset - Consumed,
               "frame starts at instant " + std::to_string(F.Start) +
                   " but the stream is at instant " +
                   std::to_string(NextInstant)};
        return TraceFrameStatus::Error;
      }
      NextInstant = F.Start + F.Count;
    } else if (TotalInstants != NextInstant) {
      Err = {TraceErrorKind::Malformed, Offset - Consumed,
             "trailer declares " + std::to_string(TotalInstants) +
                 " instants but frames covered " +
                 std::to_string(NextInstant)};
      return TraceFrameStatus::Error;
    }
    return St;
  }
}
