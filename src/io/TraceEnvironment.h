//===--- TraceEnvironment.h - Trace-backed environments ---------*- C++-*-===//
///
/// \file
/// Environments that connect the compiled step's bound slot-ID
/// Environment API to the binary trace format, in both directions:
///
///   * RecordingEnvironment wraps a live environment and mirrors every
///     exchanged window — clock ticks, input values, output events —
///     into a TraceWriter. The wrapped environment stays authoritative
///     (it still answers queries and records its own events), so a
///     recorded run is observationally identical to an unrecorded one.
///   * StreamEnvironment answers queries out of a window of decoded
///     trace frames pushed into it — the serve loop's shape, where
///     frames arrive incrementally from a socket.
///   * TraceEnvironment pulls those frames from a TraceReader on demand
///     — the `--replay` shape, mmap- or read(2)-backed.
///
/// Replay can additionally echo everything it serves (and the outputs
/// the re-execution produces) into a second TraceWriter: with the same
/// frame capacity, a deterministic program re-recorded this way is
/// byte-identical to the original file, which is exactly what the
/// differential trace leg pins. It can also verify the produced outputs
/// against the ones recorded in the trace, diagnosing the first
/// divergence by instant and signal.
///
/// All three are allocation-free per instant once warm: frame buffers
/// recycle through a free list, and every query is slot-ID based.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_IO_TRACEENVIRONMENT_H
#define SIGNALC_IO_TRACEENVIRONMENT_H

#include "interp/Environment.h"
#include "io/TraceReader.h"
#include "io/TraceWriter.h"

#include <deque>

namespace sigc {

/// Mirrors the traffic of an inner environment into a TraceWriter.
///
/// Inputs are recorded densely — a value for *every* instant of the
/// window, present or not — which is sound because the differential
/// contract already requires answers to be pure functions of
/// (binding, instant). Frames flush when a window completes, i.e. at
/// each bulk exchangeOutputs; a run that never batches (per-instant
/// writeOutput only) still records correctly but buffers frames until
/// finish(). The caller finishes the writer after the run.
class RecordingEnvironment : public Environment {
public:
  using Environment::clockTick;
  using Environment::inputValue;
  using Environment::writeOutput;

  /// Records the traffic of \p Inner against \p Writer's spec. Names
  /// outside the spec pass through unrecorded.
  RecordingEnvironment(Environment &Inner, TraceWriter &Writer);

  Environment &inner() { return Inner; }

  EnvClockId resolveClock(std::string_view Name) override;
  EnvInputId resolveInput(std::string_view Name, TypeKind Type) override;
  EnvOutputId resolveOutput(std::string_view Name, TypeKind Type) override;

  bool clockTick(EnvClockId Clock, unsigned Instant) override;
  Value inputValue(EnvInputId Input, unsigned Instant) override;
  void writeOutput(EnvOutputId Output, unsigned Instant,
                   const Value &V) override;

  void clockTicks(EnvClockId Clock, unsigned Start, unsigned Count,
                  unsigned char *Out) override;
  void inputValues(EnvInputId Input, unsigned Start, unsigned Count,
                   Value *Out) override;
  void exchangeOutputs(unsigned Start, unsigned Count, unsigned NumOutputs,
                       const EnvOutputId *Ids, const unsigned char *Present,
                       const Value *Vals) override;

private:
  Environment &Inner;
  TraceWriter &Writer;
  /// Our id -> the inner environment's id, per id space.
  std::vector<EnvClockId> InnerClock;
  std::vector<EnvInputId> InnerIn;
  std::vector<EnvOutputId> InnerOut;
  /// Our id -> index in the writer's spec (NoSpec when unrecorded).
  std::vector<unsigned> ClockSpec, InSpec, OutSpec;
  std::vector<EnvOutputId> InnerIdScratch; ///< Translated flush ids.
};

/// Replays a trace out of a window of resident frames pushed by the
/// caller. Frames must arrive in instant order; release() retires
/// instants the executor has moved past so the window stays bounded.
class StreamEnvironment : public Environment {
public:
  using Environment::clockTick;
  using Environment::inputValue;
  using Environment::writeOutput;

  explicit StreamEnvironment(TraceSpec Spec);

  const TraceSpec &streamSpec() const { return Spec; }

  //===--- Frame supply ---------------------------------------------------===//

  /// Rebases an empty window so the next pushed frame starts at
  /// \p Instant — a resumed session's shape, where frames below the
  /// resume point were already executed on a previous connection and
  /// are never re-delivered.
  void rebase(unsigned Instant);

  /// A recycled (or fresh) frame shaped for the spec, ready to decode
  /// into.
  TraceFrame takeRecycledFrame();
  /// Appends \p F to the resident window; F.Start must equal
  /// residentEnd() (frames are contiguous by construction).
  void pushFrame(TraceFrame &&F);
  /// First instant not yet resident.
  unsigned residentEnd() const { return NextPush; }
  /// First resident instant (0 until anything is released).
  unsigned residentBegin() const {
    return Window.empty() ? NextPush : Window.front().Start;
  }
  /// Retires frames wholly below \p Instant into the free list.
  void release(unsigned Instant);

  //===--- Replay-side instrumentation ------------------------------------===//

  /// Echoes every served window (and the produced outputs) into \p W.
  /// When W's spec carries clocks/inputs they are echoed too (the
  /// byte-identity pin); an outputsOnly() spec echoes just outputs (the
  /// serve loop's response stream). Pass nullptr to stop echoing.
  /// Scalar queries echo too (per-instant executors), but like an
  /// unbatched recording the writer then buffers frames until finish()
  /// and only the queried instants are mirrored — byte-identity holds
  /// for the bulk execution path.
  void setEcho(TraceWriter *W);
  /// Compares produced outputs against the ones recorded in the trace;
  /// the first divergence is latched in divergence().
  void setVerifyOutputs(bool On) { VerifyOutputs = On; }
  /// Also records OutputEvents like the in-memory environments do (off
  /// by default here: replay streams can be arbitrarily long).
  void setCollectOutputs(bool On) { CollectEvents = On; }

  uint64_t outputCount() const { return OutputCount; }
  /// Empty while every verified window matched the trace.
  const std::string &divergence() const { return Divergence; }

  //===--- Environment ----------------------------------------------------===//

  EnvClockId resolveClock(std::string_view Name) override;
  EnvInputId resolveInput(std::string_view Name, TypeKind Type) override;
  EnvOutputId resolveOutput(std::string_view Name, TypeKind Type) override;

  bool clockTick(EnvClockId Clock, unsigned Instant) override;
  Value inputValue(EnvInputId Input, unsigned Instant) override;
  void writeOutput(EnvOutputId Output, unsigned Instant,
                   const Value &V) override;

  void clockTicks(EnvClockId Clock, unsigned Start, unsigned Count,
                  unsigned char *Out) override;
  void inputValues(EnvInputId Input, unsigned Start, unsigned Count,
                   Value *Out) override;
  void exchangeOutputs(unsigned Start, unsigned Count, unsigned NumOutputs,
                       const EnvOutputId *Ids, const unsigned char *Present,
                       const Value *Vals) override;

private:
  /// The resident frame containing \p Instant (asserts residency).
  const TraceFrame &frameAt(unsigned Instant) const;

  TraceSpec Spec;
  std::deque<TraceFrame> Window;
  std::vector<TraceFrame> Free;
  unsigned NextPush = 0;

  /// Our id -> index in the spec (NoSpec for unknown names).
  std::vector<unsigned> ClockSpec, InSpec, OutSpec;

  TraceWriter *Echo = nullptr;
  bool EchoStimulus = false; ///< Echo spec carries clocks/inputs too.
  bool VerifyOutputs = false;
  bool CollectEvents = false;
  uint64_t OutputCount = 0;
  std::string Divergence;
};

/// Replays a trace by pulling frames from a TraceReader — `--replay`.
class TraceEnvironment : public StreamEnvironment {
public:
  /// \p Reader must have readHeader() already done (its spec shapes the
  /// window) and must outlive the environment.
  explicit TraceEnvironment(TraceReader &Reader);

  /// Makes up to \p Want instants from \p Start resident, pulling frames
  /// as needed, and retires everything below \p Start. \returns how many
  /// instants [Start, ...) are servable: less than Want only at the end
  /// of the trace, 0 at the end itself or on a decode error (check
  /// failed()).
  unsigned prepare(unsigned Start, unsigned Want);

  /// True once the trailer was reached cleanly.
  bool atEnd() const { return AtEnd; }
  /// Total instants declared by the trailer (valid once atEnd()).
  unsigned totalInstants() const { return Reader.totalInstants(); }

  bool failed() const { return !Reader.error().ok(); }
  const TraceError &error() const { return Reader.error(); }

private:
  TraceReader &Reader;
  bool AtEnd = false;
};

} // namespace sigc

#endif // SIGNALC_IO_TRACEENVIRONMENT_H
