//===--- FaultInjection.cpp -----------------------------------------------===//

#include "io/FaultInjection.h"

#include <algorithm>
#include <cerrno>

#include <unistd.h>

using namespace sigc;

IoSyscalls::~IoSyscalls() = default;

ssize_t IoSyscalls::read(int Fd, void *Buf, size_t Len) {
  return ::read(Fd, Buf, Len);
}

ssize_t IoSyscalls::write(int Fd, const void *Buf, size_t Len) {
  return ::write(Fd, Buf, Len);
}

IoSyscalls &IoSyscalls::system() {
  static IoSyscalls S;
  return S;
}

FaultOp FaultSyscalls::nextOp(const std::vector<FaultOp> &Sched,
                              const FaultOp &Tail, uint64_t Call) const {
  return Call < Sched.size() ? Sched[Call] : Tail;
}

ssize_t FaultSyscalls::read(int Fd, void *Buf, size_t Len) {
  FaultOp Op = nextOp(Plan.Reads, Plan.ReadTail, ReadCalls++);
  switch (Op.K) {
  case FaultOp::Eintr:
    ++EintrReturns;
    errno = EINTR;
    return -1;
  case FaultOp::Fail:
    errno = Op.Errno;
    return -1;
  case FaultOp::Eof:
    return 0;
  case FaultOp::Short:
    Len = std::min(Len, std::max<size_t>(Op.Max, 1));
    break;
  case FaultOp::Pass:
    break;
  }
  if (Plan.TruncateReadAt != FaultNoByte) {
    if (ReadPos >= Plan.TruncateReadAt)
      return 0; // The scripted end of the stream.
    Len = std::min<uint64_t>(Len, Plan.TruncateReadAt - ReadPos);
  }
  ssize_t N = IoSyscalls::read(Fd, Buf, Len);
  if (N <= 0)
    return N;
  if (Plan.CorruptReadAt != FaultNoByte && Plan.CorruptReadAt >= ReadPos &&
      Plan.CorruptReadAt < ReadPos + static_cast<uint64_t>(N))
    static_cast<uint8_t *>(Buf)[Plan.CorruptReadAt - ReadPos] ^=
        Plan.CorruptXor;
  ReadPos += static_cast<uint64_t>(N);
  return N;
}

ssize_t FaultSyscalls::write(int Fd, const void *Buf, size_t Len) {
  FaultOp Op = nextOp(Plan.Writes, Plan.WriteTail, WriteCalls++);
  switch (Op.K) {
  case FaultOp::Eintr:
    ++EintrReturns;
    errno = EINTR;
    return -1;
  case FaultOp::Fail:
    errno = Op.Errno;
    return -1;
  case FaultOp::Eof: // Meaningless for writes: treat as pass.
  case FaultOp::Pass:
    break;
  case FaultOp::Short:
    Len = std::min(Len, std::max<size_t>(Op.Max, 1));
    break;
  }
  if (Plan.FailWriteAt != FaultNoByte) {
    if (WritePos >= Plan.FailWriteAt) {
      errno = Plan.FailWriteErrno;
      return -1;
    }
    // Let the bytes below the fault point through, so the failure lands
    // at exactly the scripted offset.
    Len = std::min<uint64_t>(Len, Plan.FailWriteAt - WritePos);
  }
  ssize_t N = IoSyscalls::write(Fd, Buf, Len);
  if (N > 0)
    WritePos += static_cast<uint64_t>(N);
  return N;
}
