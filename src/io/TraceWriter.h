//===--- TraceWriter.h - Framed trace emission ------------------*- C++-*-===//
///
/// \file
/// Writes the binary trace format front to back: header, instant-batch
/// frames, trailer. The writer owns the framing — frames always cover
/// the fixed instant ranges [k*W, (k+1)*W) regardless of how the caller
/// delivers data — so the bytes a recording produces are independent of
/// the execution batch size, and a replay re-recorded through a writer
/// with the same frame capacity is byte-identical to the original file.
/// That invariant is what the differential trace leg pins.
///
/// Data arrives column-wise over arbitrary instant windows (the shape of
/// the bulk Environment exchange): putClockTicks/putInputValues for the
/// dense input side, putOutput for sparse output events. A window is
/// sealed with completeThrough(end), after which every fully covered
/// frame is encoded and flushed to the sink; finish() flushes the last
/// partial frame and the trailer. Pending-frame buffers are recycled, so
/// steady-state recording costs no per-instant allocation.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_IO_TRACEWRITER_H
#define SIGNALC_IO_TRACEWRITER_H

#include "io/TraceFormat.h"

#include <deque>

namespace sigc {

class IoSyscalls;

/// Destination of encoded trace bytes.
class TraceSink {
public:
  virtual ~TraceSink();
  /// Appends \p Len bytes; returns false on an I/O failure.
  virtual bool write(const uint8_t *Data, size_t Len) = 0;
};

/// Accumulates the trace in memory (tests, the oracle's byte pins, the
/// serve loop's per-session output queues).
class MemorySink : public TraceSink {
public:
  bool write(const uint8_t *Data, size_t Len) override {
    Bytes.insert(Bytes.end(), Data, Data + Len);
    return true;
  }
  const std::vector<uint8_t> &bytes() const { return Bytes; }
  std::vector<uint8_t> takeBytes() { return std::move(Bytes); }

private:
  std::vector<uint8_t> Bytes;
};

/// Writes through a file descriptor with full-write retry semantics:
/// partial writes loop, EINTR retries, and a hard failure (ENOSPC, a
/// closed pipe's EPIPE, ...) latches a byte-offset-positioned diagnostic
/// instead of silently truncating the recording.
class FdSink : public TraceSink {
public:
  /// \p OwnsFd closes the descriptor on destruction. \p Sys overrides
  /// the write(2) layer (fault injection); nullptr uses the real
  /// syscalls.
  explicit FdSink(int Fd, bool OwnsFd, IoSyscalls *Sys = nullptr);
  ~FdSink() override;
  bool write(const uint8_t *Data, size_t Len) override;

  /// Opens \p Path for writing (truncating); returns a negative fd and
  /// fills \p Error on failure.
  static int openFile(const std::string &Path, std::string &Error);

  /// Bytes successfully written so far.
  uint64_t written() const { return Written; }
  /// After a failed write: "at byte N: <strerror>". Empty otherwise.
  const std::string &errorDetail() const { return Detail; }

private:
  int Fd;
  bool OwnsFd;
  IoSyscalls *Sys;
  uint64_t Written = 0;
  std::string Detail;
};

/// Emits one trace stream into a sink.
class TraceWriter {
public:
  /// Writes the header immediately. The sink must outlive the writer.
  TraceWriter(TraceSink &Sink, TraceSpec Spec);

  /// Resume-mode writer: continues a stream whose frames below
  /// \p StartInstant (a multiple of the frame capacity) were already
  /// delivered — the serve front end's session-resume shape, where the
  /// resumed connection carries the tail of the same logical stream.
  /// With \p EmitHeader false no header is written, so concatenating the
  /// original connection's bytes with this writer's yields one valid
  /// stream, byte-identical to an uninterrupted run.
  TraceWriter(TraceSink &Sink, TraceSpec Spec, unsigned StartInstant,
              bool EmitHeader);

  const TraceSpec &spec() const { return Spec; }

  //===--- Column delivery (any monotone window shape) --------------------===//

  /// Records the ticks of clock \p ClockIdx over [Start, Start+Count).
  void putClockTicks(unsigned ClockIdx, unsigned Start, unsigned Count,
                     const unsigned char *Ticks);
  /// Records the values of input \p InputIdx over [Start, Start+Count).
  void putInputValues(unsigned InputIdx, unsigned Start, unsigned Count,
                      const Value *Vals);
  /// Records one output occurrence.
  void putOutput(unsigned OutputIdx, unsigned Instant, const Value &V);

  /// Declares every instant below \p End final: full frames ending at or
  /// before \p End are encoded and flushed.
  void completeThrough(unsigned End);

  /// Flushes the final partial frame (if any) and the trailer for a
  /// trace of \p TotalInstants. No data may be put after this.
  /// \returns false if any sink write failed (also queryable via ok()).
  bool finish(unsigned TotalInstants);

  /// False after any sink failure; the first failure is latched.
  bool ok() const { return Ok; }

private:
  TraceFrame &frameFor(unsigned Instant);
  void flushFrame(TraceFrame &F);
  void sinkBytes(const std::vector<uint8_t> &Bytes);

  TraceSink &Sink;
  TraceSpec Spec;
  /// Pending frames in instant order; front starts at FlushedInstants.
  /// Recycled through FreeFrames instead of freed.
  std::deque<TraceFrame> Pending;
  std::vector<TraceFrame> FreeFrames;
  unsigned FlushedInstants = 0; ///< Frames below this are on the sink.
  std::vector<uint8_t> EncodeBuf;
  bool Finished = false;
  bool Ok = true;
};

} // namespace sigc

#endif // SIGNALC_IO_TRACEWRITER_H
