//===--- TraceEnvironment.cpp ---------------------------------------------===//

#include "io/TraceEnvironment.h"

#include <algorithm>
#include <cassert>

using namespace sigc;

namespace {

constexpr unsigned NoSpec = ~0u;

/// Index of \p Name in a name list; NoSpec when absent.
template <typename List, typename NameOf>
unsigned specIndex(const List &Names, std::string_view Name, NameOf GetName) {
  for (size_t I = 0; I < Names.size(); ++I)
    if (GetName(Names[I]) == Name)
      return static_cast<unsigned>(I);
  return NoSpec;
}

unsigned clockSpecIndex(const TraceSpec &Spec, std::string_view Name) {
  return specIndex(Spec.Clocks, Name, [](const std::string &N) { return N; });
}
unsigned inputSpecIndex(const TraceSpec &Spec, std::string_view Name) {
  return specIndex(Spec.Inputs, Name,
                   [](const TraceSpec::Signal &S) { return S.Name; });
}
unsigned outputSpecIndex(const TraceSpec &Spec, std::string_view Name) {
  return specIndex(Spec.Outputs, Name,
                   [](const TraceSpec::Signal &S) { return S.Name; });
}

} // namespace

//===----------------------------------------------------------------------===//
// RecordingEnvironment
//===----------------------------------------------------------------------===//

RecordingEnvironment::RecordingEnvironment(Environment &Inner,
                                           TraceWriter &Writer)
    : Inner(Inner), Writer(Writer) {}

EnvClockId RecordingEnvironment::resolveClock(std::string_view Name) {
  EnvClockId Id = Environment::resolveClock(Name);
  if (Id == InnerClock.size()) {
    InnerClock.push_back(Inner.resolveClock(Name));
    ClockSpec.push_back(clockSpecIndex(Writer.spec(), Name));
  }
  return Id;
}

EnvInputId RecordingEnvironment::resolveInput(std::string_view Name,
                                              TypeKind Type) {
  EnvInputId Id = Environment::resolveInput(Name, Type);
  if (Id == InnerIn.size()) {
    InnerIn.push_back(Inner.resolveInput(Name, Type));
    InSpec.push_back(inputSpecIndex(Writer.spec(), Name));
  }
  return Id;
}

EnvOutputId RecordingEnvironment::resolveOutput(std::string_view Name,
                                                TypeKind Type) {
  EnvOutputId Id = Environment::resolveOutput(Name, Type);
  if (Id == InnerOut.size()) {
    InnerOut.push_back(Inner.resolveOutput(Name, Type));
    OutSpec.push_back(outputSpecIndex(Writer.spec(), Name));
  }
  return Id;
}

bool RecordingEnvironment::clockTick(EnvClockId Clock, unsigned Instant) {
  bool Tick = Inner.clockTick(InnerClock[Clock], Instant);
  if (ClockSpec[Clock] != NoSpec) {
    unsigned char T = Tick;
    Writer.putClockTicks(ClockSpec[Clock], Instant, 1, &T);
  }
  return Tick;
}

Value RecordingEnvironment::inputValue(EnvInputId Input, unsigned Instant) {
  Value V = Inner.inputValue(InnerIn[Input], Instant);
  if (InSpec[Input] != NoSpec)
    Writer.putInputValues(InSpec[Input], Instant, 1, &V);
  return V;
}

void RecordingEnvironment::writeOutput(EnvOutputId Output, unsigned Instant,
                                       const Value &V) {
  Inner.writeOutput(InnerOut[Output], Instant, V);
  if (OutSpec[Output] != NoSpec)
    Writer.putOutput(OutSpec[Output], Instant, V);
}

void RecordingEnvironment::clockTicks(EnvClockId Clock, unsigned Start,
                                      unsigned Count, unsigned char *Out) {
  Inner.clockTicks(InnerClock[Clock], Start, Count, Out);
  if (ClockSpec[Clock] != NoSpec)
    Writer.putClockTicks(ClockSpec[Clock], Start, Count, Out);
}

void RecordingEnvironment::inputValues(EnvInputId Input, unsigned Start,
                                       unsigned Count, Value *Out) {
  Inner.inputValues(InnerIn[Input], Start, Count, Out);
  if (InSpec[Input] != NoSpec)
    Writer.putInputValues(InSpec[Input], Start, Count, Out);
}

void RecordingEnvironment::exchangeOutputs(unsigned Start, unsigned Count,
                                           unsigned NumOutputs,
                                           const EnvOutputId *Ids,
                                           const unsigned char *Present,
                                           const Value *Vals) {
  InnerIdScratch.resize(NumOutputs);
  for (unsigned C = 0; C < NumOutputs; ++C)
    InnerIdScratch[C] = InnerOut[Ids[C]];
  Inner.exchangeOutputs(Start, Count, NumOutputs, InnerIdScratch.data(),
                        Present, Vals);
  for (unsigned I = 0; I < Count; ++I)
    for (unsigned C = 0; C < NumOutputs; ++C)
      if (Present[static_cast<size_t>(I) * NumOutputs + C]) {
        unsigned S = OutSpec[Ids[C]];
        if (S != NoSpec)
          Writer.putOutput(S, Start + I,
                           Vals[static_cast<size_t>(I) * NumOutputs + C]);
      }
  // The executor exchanges outputs once per window, after the window's
  // stimulus queries: the window below Start+Count is complete and its
  // full frames can flush.
  Writer.completeThrough(Start + Count);
}

//===----------------------------------------------------------------------===//
// StreamEnvironment
//===----------------------------------------------------------------------===//

StreamEnvironment::StreamEnvironment(TraceSpec Spec) : Spec(std::move(Spec)) {}

void StreamEnvironment::rebase(unsigned Instant) {
  assert(Window.empty() && "rebase with frames resident");
  assert(Instant % Spec.FrameInstants == 0 &&
         "resume points are frame boundaries");
  NextPush = Instant;
}

TraceFrame StreamEnvironment::takeRecycledFrame() {
  TraceFrame F;
  if (!Free.empty()) {
    F = std::move(Free.back());
    Free.pop_back();
  }
  F.shape(Spec);
  return F;
}

void StreamEnvironment::pushFrame(TraceFrame &&F) {
  assert(F.Start == NextPush && "frames must arrive contiguously");
  assert(F.Cap == Spec.FrameInstants && "frame shaped for another spec");
  NextPush = F.end();
  Window.push_back(std::move(F));
}

void StreamEnvironment::release(unsigned Instant) {
  while (!Window.empty() && Window.front().end() <= Instant) {
    Free.push_back(std::move(Window.front()));
    Window.pop_front();
  }
}

void StreamEnvironment::setEcho(TraceWriter *W) {
  Echo = W;
  EchoStimulus = W && (!W->spec().Clocks.empty() || !W->spec().Inputs.empty());
}

const TraceFrame &StreamEnvironment::frameAt(unsigned Instant) const {
  assert(!Window.empty() && Instant >= Window.front().Start &&
         Instant < NextPush && "query outside the resident window");
  size_t Idx = (Instant - Window.front().Start) / Spec.FrameInstants;
  const TraceFrame &F = Window[Idx];
  assert(Instant >= F.Start && Instant < F.end() && "window misaligned");
  return F;
}

EnvClockId StreamEnvironment::resolveClock(std::string_view Name) {
  EnvClockId Id = Environment::resolveClock(Name);
  if (Id == ClockSpec.size())
    ClockSpec.push_back(clockSpecIndex(Spec, Name));
  return Id;
}

EnvInputId StreamEnvironment::resolveInput(std::string_view Name,
                                           TypeKind Type) {
  EnvInputId Id = Environment::resolveInput(Name, Type);
  if (Id == InSpec.size())
    InSpec.push_back(inputSpecIndex(Spec, Name));
  return Id;
}

EnvOutputId StreamEnvironment::resolveOutput(std::string_view Name,
                                             TypeKind Type) {
  EnvOutputId Id = Environment::resolveOutput(Name, Type);
  if (Id == OutSpec.size())
    OutSpec.push_back(outputSpecIndex(Spec, Name));
  return Id;
}

bool StreamEnvironment::clockTick(EnvClockId Clock, unsigned Instant) {
  unsigned S = ClockSpec[Clock];
  assert(S != NoSpec && "clock not in the trace interface");
  const TraceFrame &F = frameAt(Instant);
  unsigned char T =
      F.ClockTicks[static_cast<size_t>(S) * F.Cap + (Instant - F.Start)];
  if (Echo && EchoStimulus)
    Echo->putClockTicks(S, Instant, 1, &T);
  return T != 0;
}

Value StreamEnvironment::inputValue(EnvInputId Input, unsigned Instant) {
  unsigned S = InSpec[Input];
  assert(S != NoSpec && "input not in the trace interface");
  const TraceFrame &F = frameAt(Instant);
  Value V = F.InputVals[static_cast<size_t>(S) * F.Cap + (Instant - F.Start)];
  if (Echo && EchoStimulus)
    Echo->putInputValues(S, Instant, 1, &V);
  return V;
}

void StreamEnvironment::writeOutput(EnvOutputId Output, unsigned Instant,
                                    const Value &V) {
  if (CollectEvents)
    Environment::writeOutput(Output, Instant, V);
  ++OutputCount;
  unsigned S = OutSpec[Output];
  if (S == NoSpec)
    return;
  if (Echo)
    Echo->putOutput(S, Instant, V);
  if (VerifyOutputs && Divergence.empty()) {
    const TraceFrame &F = frameAt(Instant);
    size_t FAt = static_cast<size_t>(S) * F.Cap + (Instant - F.Start);
    if (!F.OutPresent[FAt])
      Divergence = "instant " + std::to_string(Instant) + ": output " +
                   outputBindingName(Output) +
                   " produced but absent in the trace";
    else if (F.OutVals[FAt] != V)
      Divergence = "instant " + std::to_string(Instant) + ": output " +
                   outputBindingName(Output) + " = " + V.str() +
                   ", trace recorded " + F.OutVals[FAt].str();
  }
}

void StreamEnvironment::clockTicks(EnvClockId Clock, unsigned Start,
                                   unsigned Count, unsigned char *Out) {
  unsigned S = ClockSpec[Clock];
  assert(S != NoSpec && "clock not in the trace interface");
  unsigned I = 0;
  while (I < Count) {
    const TraceFrame &F = frameAt(Start + I);
    unsigned Off = (Start + I) - F.Start;
    unsigned Take = std::min(Count - I, F.Count - Off);
    const unsigned char *Row = &F.ClockTicks[static_cast<size_t>(S) * F.Cap];
    std::copy_n(Row + Off, Take, Out + I);
    I += Take;
  }
  if (Echo && EchoStimulus)
    Echo->putClockTicks(S, Start, Count, Out);
}

void StreamEnvironment::inputValues(EnvInputId Input, unsigned Start,
                                    unsigned Count, Value *Out) {
  unsigned S = InSpec[Input];
  assert(S != NoSpec && "input not in the trace interface");
  unsigned I = 0;
  while (I < Count) {
    const TraceFrame &F = frameAt(Start + I);
    unsigned Off = (Start + I) - F.Start;
    unsigned Take = std::min(Count - I, F.Count - Off);
    const Value *Row = &F.InputVals[static_cast<size_t>(S) * F.Cap];
    std::copy_n(Row + Off, Take, Out + I);
    I += Take;
  }
  if (Echo && EchoStimulus)
    Echo->putInputValues(S, Start, Count, Out);
}

void StreamEnvironment::exchangeOutputs(unsigned Start, unsigned Count,
                                        unsigned NumOutputs,
                                        const EnvOutputId *Ids,
                                        const unsigned char *Present,
                                        const Value *Vals) {
  for (unsigned I = 0; I < Count; ++I) {
    for (unsigned C = 0; C < NumOutputs; ++C) {
      size_t At = static_cast<size_t>(I) * NumOutputs + C;
      unsigned S = OutSpec[Ids[C]];
      bool Produced = Present[At] != 0;
      if (Produced) {
        ++OutputCount;
        // The base (non-virtual) overload: our own writeOutput override
        // would echo/count this cell a second time.
        if (CollectEvents)
          Environment::writeOutput(Ids[C], Start + I, Vals[At]);
      }
      if (S == NoSpec)
        continue;
      if (Produced && Echo)
        Echo->putOutput(S, Start + I, Vals[At]);
      if (VerifyOutputs && Divergence.empty()) {
        const TraceFrame &F = frameAt(Start + I);
        size_t FAt = static_cast<size_t>(S) * F.Cap + (Start + I - F.Start);
        bool Recorded = F.OutPresent[FAt] != 0;
        if (Recorded != Produced)
          Divergence = "instant " + std::to_string(Start + I) + ": output " +
                       outputBindingName(Ids[C]) +
                       (Produced ? " produced but absent in the trace"
                                 : " recorded in the trace but not produced");
        else if (Produced && F.OutVals[FAt] != Vals[At])
          Divergence = "instant " + std::to_string(Start + I) + ": output " +
                       outputBindingName(Ids[C]) + " = " + Vals[At].str() +
                       ", trace recorded " + F.OutVals[FAt].str();
      }
    }
  }
  if (Echo)
    Echo->completeThrough(Start + Count);
}

//===----------------------------------------------------------------------===//
// TraceEnvironment
//===----------------------------------------------------------------------===//

TraceEnvironment::TraceEnvironment(TraceReader &Reader)
    : StreamEnvironment(Reader.spec()), Reader(Reader) {}

unsigned TraceEnvironment::prepare(unsigned Start, unsigned Want) {
  release(Start);
  while (!AtEnd && residentEnd() < Start + Want) {
    TraceFrame F = takeRecycledFrame();
    TraceFrameStatus St = Reader.nextFrame(F);
    if (St == TraceFrameStatus::Frame) {
      pushFrame(std::move(F));
      continue;
    }
    if (St == TraceFrameStatus::End)
      AtEnd = true;
    else
      return 0; // Reader.error() is positioned.
    break;
  }
  unsigned End = residentEnd();
  if (Start >= End)
    return 0;
  return std::min(Want, End - Start);
}
