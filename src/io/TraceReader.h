//===--- TraceReader.h - Robust trace decoding ------------------*- C++-*-===//
///
/// \file
/// Sequential decoding of the binary trace format from a pluggable byte
/// source. Two production sources cover the two stream shapes the
/// ROADMAP names:
///
///   * MmapTraceSource — replay of an on-disk recording: the file is
///     mapped once and frames decode straight out of the mapping, no
///     copies, no read(2) in the steady state;
///   * FdTraceSource — pipes and sockets, where mmap is unavailable: a
///     fixed ring of buffered read(2) calls, each refill pulling as many
///     frames' worth of bytes as the kernel will give.
///
/// MemoryTraceSource serves tests and the oracle's byte-level pins.
///
/// The reader never trusts input: bad magic, unsupported version,
/// byteswapped producers, malformed descriptor tables, oversized frame
/// lengths, payload checksum mismatches and truncation anywhere are all
/// diagnosed with the byte offset of the failure — a corrupt file is an
/// exit-code-2 diagnostic, never UB (the corrupt-input regression suite
/// runs this under ASan/UBSan).
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_IO_TRACEREADER_H
#define SIGNALC_IO_TRACEREADER_H

#include "io/TraceFormat.h"

namespace sigc {

class IoSyscalls;

/// Sequential byte source. peek() exposes at least \p Min buffered bytes
/// (less only at end of stream); consume() retires them.
class TraceSource {
public:
  virtual ~TraceSource();
  /// \returns a pointer to the next unconsumed bytes and sets \p Avail
  /// to how many are visible (>= Min unless the stream ended). On an
  /// I/O error returns nullptr and fills \p Error.
  virtual const uint8_t *peek(size_t Min, size_t &Avail,
                              std::string &Error) = 0;
  /// Retires \p N bytes (N <= the last peek's Avail).
  virtual void consume(size_t N) = 0;
};

/// A source over bytes already in memory.
class MemoryTraceSource : public TraceSource {
public:
  MemoryTraceSource(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}
  explicit MemoryTraceSource(const std::vector<uint8_t> &Bytes)
      : Data(Bytes.data()), Len(Bytes.size()) {}
  const uint8_t *peek(size_t Min, size_t &Avail, std::string &Error) override;
  void consume(size_t N) override;

private:
  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
};

/// Maps a whole file and reads out of the mapping.
class MmapTraceSource : public TraceSource {
public:
  MmapTraceSource() = default;
  ~MmapTraceSource() override;
  /// Maps \p Path read-only; false (with \p Error) when the file cannot
  /// be opened, statted or mapped (e.g. it is a pipe).
  bool open(const std::string &Path, std::string &Error);
  const uint8_t *peek(size_t Min, size_t &Avail, std::string &Error) override;
  void consume(size_t N) override;

private:
  const uint8_t *Map = nullptr;
  size_t Len = 0;
  size_t Pos = 0;
};

/// Buffered read(2) over a descriptor — the no-mmap path for pipes,
/// sockets and FIFOs. The buffer compacts and refills in place; its size
/// is fixed after construction, so steady-state streaming allocates
/// nothing.
class FdTraceSource : public TraceSource {
public:
  /// \p OwnsFd closes the descriptor on destruction. \p BufSize is
  /// grown as needed to hold one whole peek (a frame), so any positive
  /// value is correct. \p Sys overrides the read(2) layer (fault
  /// injection); nullptr uses the real syscalls.
  explicit FdTraceSource(int Fd, bool OwnsFd, size_t BufSize = 1 << 16,
                         IoSyscalls *Sys = nullptr);
  ~FdTraceSource() override;
  /// Opens \p Path with open(2); false (with \p Error) on failure.
  static int openFile(const std::string &Path, std::string &Error);

  const uint8_t *peek(size_t Min, size_t &Avail, std::string &Error) override;
  void consume(size_t N) override;

private:
  int Fd;
  bool OwnsFd;
  IoSyscalls *Sys;
  std::vector<uint8_t> Buf;
  size_t Begin = 0, End = 0;
  bool Eof = false;
};

/// Decodes one trace stream: header first, then frames until the
/// trailer. Frame buffers are reused; steady-state decoding is
/// allocation-free.
class TraceReader {
public:
  /// The source must outlive the reader.
  explicit TraceReader(TraceSource &Source) : Source(Source) {}

  /// Parses and validates the header. False with error() positioned on
  /// any failure.
  bool readHeader();

  /// The interface parsed from the header (valid after readHeader()).
  const TraceSpec &spec() const { return Spec; }

  /// Validates the trace interface against the compiled step it is
  /// about to drive: free clocks, inputs and outputs must match name for
  /// name and type for type. False (error() positioned, kind
  /// InterfaceMismatch) on any difference.
  bool matchesStep(const CompiledStep &CS);

  /// Decodes the next frame into \p F. Frame on success, End at the
  /// trailer, Error otherwise (a file source reports a mid-frame EOF as
  /// Error with a Truncated kind; NeedMore is never returned here).
  TraceFrameStatus nextFrame(TraceFrame &F);

  /// Total instants declared by the trailer (valid once nextFrame
  /// returned End).
  unsigned totalInstants() const { return TotalInstants; }

  /// Stream offset of the next unread byte.
  uint64_t offset() const { return Offset; }

  const TraceError &error() const { return Err; }

private:
  TraceSource &Source;
  TraceSpec Spec;
  TraceError Err;
  uint64_t Offset = 0;
  unsigned TotalInstants = 0;
  unsigned NextInstant = 0; ///< Expected start of the next frame.
  bool HeaderRead = false;
};

} // namespace sigc

#endif // SIGNALC_IO_TRACEREADER_H
