//===--- Oracle.cpp -------------------------------------------------------===//

#include "testing/Oracle.h"

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/Environment.h"
#include "interp/FleetExecutor.h"
#include "interp/KernelInterp.h"
#include "interp/LinkedExecutor.h"
#include "interp/StepExecutor.h"
#include "interp/VmExecutor.h"
#include "io/TraceEnvironment.h"
#include "link/LinkEmitter.h"
#include "native/NativeCache.h"
#include "native/NativeExecutor.h"
#include "native/StepHash.h"
#include "testing/TraceCompare.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include <unistd.h>

using namespace sigc;

namespace {

/// Formats one failure report: header, diff, then the full source so the
/// failure reproduces from the log alone.
std::string failure(const std::string &Name, const std::string &What,
                    const std::string &Detail, const std::string &Source) {
  std::string Out = "[" + Name + "] " + What + "\n";
  if (!Detail.empty())
    Out += Detail;
  Out += "--- program ---\n" + Source;
  return Out;
}

/// The host compiler command, probed once ("" = none found).
const std::string &hostCC() {
  static const std::string CC = [] {
    for (const char *Cand : {"cc", "gcc", "clang"}) {
      std::string Probe =
          std::string("command -v ") + Cand + " >/dev/null 2>&1";
      if (std::system(Probe.c_str()) == 0)
        return std::string(Cand);
    }
    return std::string();
  }();
  return CC;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Renders a C literal for \p V that round-trips exactly.
std::string cInputLiteral(const Value &V) {
  switch (V.Kind) {
  case TypeKind::Boolean:
  case TypeKind::Event:
    return V.asBool() ? "1" : "0";
  case TypeKind::Integer:
    return std::to_string(V.Int) + "L";
  case TypeKind::Real: {
    char Buf[64];
    std::snprintf(Buf, sizeof Buf, "%.17g", V.Real);
    return Buf;
  }
  case TypeKind::Unknown:
    break;
  }
  return "0";
}

/// Builds the scripted-replay harness appended to the emitted step code:
/// every free-clock tick and input value of every instant is precomputed
/// from the same RandomEnvironment the in-process paths used (its answers
/// are pure functions of seed, name and instant) and baked into arrays.
/// Instants run through the batched entry point over input/output
/// arrays, exercising the same boundary the VM's stepN amortizes; the
/// generated counters print as one trailing #counters line.
///
/// When Options.FleetInstances > 0, the harness also self-checks the
/// emitted `<proc>_step_fleet`: per-instance input arrays (instance j
/// seeded EnvSeed+j, mirroring the in-process fleet leg) run once through
/// the fleet sweep and once per instance through `_step_batch`; every
/// present flag, value and per-instance counter must agree, and a
/// trailing "#fleet ok" line reports success (mismatch exits 1).
std::string buildHarness(const Compilation &C, const std::string &Proc,
                         const OracleOptions &Options) {
  const CompiledStep &Step = C.Compiled;
  RandomEnvironment Env(Options.EnvSeed, Options.TickPermille);
  unsigned N = Options.Instants;
  unsigned M = Options.FleetInstances;
  std::string NS = std::to_string(N), MS = std::to_string(M);

  std::string Out = "\n#include <stdio.h>\n\n";

  for (const auto &CI : Step.ClockInputs) {
    Out += "static const int tick_" + sanitizeIdent(CI.Name) + "_v[" +
           std::to_string(N) + "] = {";
    for (unsigned I = 0; I < N; ++I)
      Out += std::string(Env.clockTick(CI.Name, I) ? "1" : "0") + ",";
    Out += "};\n";
  }
  for (const auto &SI : Step.Inputs) {
    const char *CType = SI.Type == TypeKind::Integer  ? "long"
                        : SI.Type == TypeKind::Real ? "double"
                                                      : "int";
    Out += std::string("static const ") + CType + " in_" +
           sanitizeIdent(SI.Name) + "_v[" + std::to_string(N) + "] = {";
    for (unsigned I = 0; I < N; ++I)
      Out += cInputLiteral(Env.inputValue(SI.Name, SI.Type, I)) + ",";
    Out += "};\n";
  }

  // The fleet's per-instance replay scripts, one row per instance.
  if (M) {
    for (const auto &CI : Step.ClockInputs) {
      Out += "static const int ftick_" + sanitizeIdent(CI.Name) + "_v[" + MS +
             "][" + NS + "] = {";
      for (unsigned J = 0; J < M; ++J) {
        RandomEnvironment EnvJ(Options.EnvSeed + J, Options.TickPermille);
        Out += "{";
        for (unsigned I = 0; I < N; ++I)
          Out += std::string(EnvJ.clockTick(CI.Name, I) ? "1" : "0") + ",";
        Out += "},";
      }
      Out += "};\n";
    }
    for (const auto &SI : Step.Inputs) {
      const char *CType = SI.Type == TypeKind::Integer ? "long"
                          : SI.Type == TypeKind::Real  ? "double"
                                                       : "int";
      Out += std::string("static const ") + CType + " fin_" +
             sanitizeIdent(SI.Name) + "_v[" + MS + "][" + NS + "] = {";
      for (unsigned J = 0; J < M; ++J) {
        RandomEnvironment EnvJ(Options.EnvSeed + J, Options.TickPermille);
        Out += "{";
        for (unsigned I = 0; I < N; ++I)
          Out += cInputLiteral(EnvJ.inputValue(SI.Name, SI.Type, I)) + ",";
        Out += "},";
      }
      Out += "};\n";
    }
  }

  Out += "\nstatic " + Proc + "_in_t in_v[" + std::to_string(N) + "];\n";
  Out += "static " + Proc + "_out_t out_v[" + std::to_string(N) + "];\n";
  if (M) {
    Out += "static " + Proc + "_in_t fin_v[" + MS + " * " + NS + "];\n";
    Out += "static " + Proc + "_out_t fout_v[" + MS + " * " + NS + "];\n";
    Out += "static " + Proc + "_out_t fref_v[" + MS + " * " + NS + "];\n";
    Out += "static " + Proc + "_state_t fst_v[" + MS + "];\n";
    Out += "static " + Proc + "_state_t fref_st_v[" + MS + "];\n";
  }
  Out += "\nint main(void) {\n";
  Out += "  " + Proc + "_state_t st;\n";
  Out += "  unsigned i;\n";
  Out += "  " + Proc + "_init(&st);\n";
  Out += "  for (i = 0; i < " + std::to_string(N) + "; ++i) {\n";
  for (const auto &CI : Step.ClockInputs) {
    std::string Id = sanitizeIdent(CI.Name);
    Out += "    in_v[i].tick_" + Id + " = tick_" + Id + "_v[i];\n";
  }
  for (const auto &SI : Step.Inputs) {
    std::string Id = sanitizeIdent(SI.Name);
    Out += "    in_v[i]." + Id + " = in_" + Id + "_v[i];\n";
  }
  Out += "  }\n";
  Out += "  " + Proc + "_step_batch(&st, in_v, out_v, " + std::to_string(N) +
         ");\n";
  Out += "  for (i = 0; i < " + std::to_string(N) + "; ++i) {\n";
  for (const auto &SO : Step.Outputs) {
    std::string Id = sanitizeIdent(SO.Name);
    const char *Fmt = SO.Type == TypeKind::Integer  ? "%ld"
                      : SO.Type == TypeKind::Real ? "%.17g"
                                                    : "%d";
    Out += "    if (out_v[i]." + Id + "_present) printf(\"%u " + Id + "=" +
           Fmt + "\\n\", i, out_v[i]." + Id + ");\n";
  }
  Out += "  }\n";
  Out += "  printf(\"#counters guards=%llu executed=%llu\\n\", "
         "st.guard_tests, st.executed);\n";
  if (M) {
    Out += "  {\n";
    Out += "    unsigned j;\n";
    Out += "    for (j = 0; j < " + MS + "; ++j)\n";
    Out += "      for (i = 0; i < " + NS + "; ++i) {\n";
    for (const auto &CI : Step.ClockInputs) {
      std::string Id = sanitizeIdent(CI.Name);
      Out += "        fin_v[j * " + NS + " + i].tick_" + Id + " = ftick_" +
             Id + "_v[j][i];\n";
    }
    for (const auto &SI : Step.Inputs) {
      std::string Id = sanitizeIdent(SI.Name);
      Out += "        fin_v[j * " + NS + " + i]." + Id + " = fin_" + Id +
             "_v[j][i];\n";
    }
    Out += "      }\n";
    Out += "    for (j = 0; j < " + MS + "; ++j)\n";
    Out += "      " + Proc + "_init(&fst_v[j]);\n";
    Out += "    " + Proc + "_step_fleet(fst_v, fin_v, fout_v, " + MS + ", " +
           NS + ");\n";
    Out += "    for (j = 0; j < " + MS + "; ++j) {\n";
    Out += "      " + Proc + "_init(&fref_st_v[j]);\n";
    Out += "      " + Proc + "_step_batch(&fref_st_v[j], &fin_v[j * " + NS +
           "], &fref_v[j * " + NS + "], " + NS + ");\n";
    Out += "    }\n";
    Out += "    for (j = 0; j < " + MS + "; ++j) {\n";
    Out += "      if (fst_v[j].guard_tests != fref_st_v[j].guard_tests ||\n";
    Out += "          fst_v[j].executed != fref_st_v[j].executed) {\n";
    Out += "        printf(\"#fleet counter mismatch instance=%u\\n\", j);\n";
    Out += "        return 1;\n";
    Out += "      }\n";
    Out += "      for (i = 0; i < " + NS + "; ++i) {\n";
    for (const auto &SO : Step.Outputs) {
      std::string Id = sanitizeIdent(SO.Name);
      std::string A = "fout_v[j * " + NS + " + i]." + Id;
      std::string B = "fref_v[j * " + NS + " + i]." + Id;
      // NaN-safe value compare for reals; exact otherwise. (The self-
      // comparison form is only emitted for doubles — on integer types
      // it would trip -Wtautological-compare under -Werror.)
      std::string Eq = A + " == " + B;
      if (SO.Type == TypeKind::Real)
        Eq = "(" + Eq + " || (" + A + " != " + A + " && " + B + " != " + B +
             "))";
      Out += "        if (" + A + "_present != " + B + "_present ||\n";
      Out += "            (" + A + "_present && !(" + Eq + "))) {\n";
      Out += "          printf(\"#fleet output mismatch instance=%u "
             "instant=%u signal=" + Id + "\\n\", j, i);\n";
      Out += "          return 1;\n";
      Out += "        }\n";
    }
    Out += "      }\n";
    Out += "    }\n";
    Out += "    printf(\"#fleet ok instances=%u\\n\", " + MS + ");\n";
    Out += "  }\n";
  }
  Out += "  return 0;\n}\n";
  return Out;
}

/// One classified line of a harness' stdout: a trailing "#counters
/// guards=G executed=E" line, a "#fleet ok" self-check verdict, or an
/// "INSTANT IDENT=VALUE" event line.
struct HarnessLine {
  bool IsCounters = false;
  bool IsFleetOk = false;
  unsigned Instant = 0;
  std::string Ident;
  std::string Val;
};

/// Classifies and splits one harness stdout line, filling the counter
/// outputs for #counters lines. The one parser both the single-process
/// and the linked round-trip share. \returns false with \p Error set on
/// an unparseable line.
bool splitHarnessLine(const std::string &Line, HarnessLine &Out,
                      uint64_t &CGuards, uint64_t &CExecuted,
                      std::string &Error) {
  if (Line[0] == '#') {
    unsigned Instances = 0;
    if (std::sscanf(Line.c_str(), "#fleet ok instances=%u", &Instances) ==
        1) {
      Out.IsFleetOk = true;
      return true;
    }
    unsigned long long G = 0, E = 0;
    if (std::sscanf(Line.c_str(), "#counters guards=%llu executed=%llu", &G,
                    &E) != 2) {
      Error = "unparseable harness comment line: '" + Line + "'";
      return false;
    }
    CGuards = G;
    CExecuted = E;
    Out.IsCounters = true;
    return true;
  }
  size_t Sp = Line.find(' ');
  size_t Eq = Line.find('=', Sp);
  if (Sp == std::string::npos || Eq == std::string::npos) {
    Error = "unparseable harness output line: '" + Line + "'";
    return false;
  }
  Out.IsCounters = false;
  Out.Instant =
      static_cast<unsigned>(std::strtoul(Line.c_str(), nullptr, 10));
  Out.Ident = Line.substr(Sp + 1, Eq - Sp - 1);
  Out.Val = Line.substr(Eq + 1);
  return true;
}

/// Parses one printed output value back into a Value of \p Type.
/// \returns false for unknown-typed outputs.
bool parseTypedValue(TypeKind Type, const std::string &Text, Value &V) {
  switch (Type) {
  case TypeKind::Boolean:
    V = Value::makeBool(std::strtol(Text.c_str(), nullptr, 10) != 0);
    return true;
  case TypeKind::Event:
    V = Value::makeEvent();
    return true;
  case TypeKind::Integer:
    V = Value::makeInt(std::strtoll(Text.c_str(), nullptr, 10));
    return true;
  case TypeKind::Real:
    V = Value::makeReal(std::strtod(Text.c_str(), nullptr));
    return true;
  case TypeKind::Unknown:
    break;
  }
  return false;
}

/// Parses the harness' stdout back into output events plus the generated
/// program's own guard/executed counters; \p FleetOk records whether the
/// in-C fleet self-check printed its success line.
bool parseHarnessTrace(const std::string &Text, const CompiledStep &Step,
                       std::vector<OutputEvent> &Events, uint64_t &CGuards,
                       uint64_t &CExecuted, bool &FleetOk,
                       std::string &Error) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    HarnessLine HL;
    if (!splitHarnessLine(Line, HL, CGuards, CExecuted, Error))
      return false;
    if (HL.IsFleetOk) {
      FleetOk = true;
      continue;
    }
    if (HL.IsCounters)
      continue;

    const StepProgram::SignalIODesc *Desc = nullptr;
    for (const auto &SO : Step.Outputs)
      if (sanitizeIdent(SO.Name) == HL.Ident)
        Desc = &SO;
    if (!Desc) {
      Error = "harness printed unknown output '" + HL.Ident + "'";
      return false;
    }

    Value V;
    if (!parseTypedValue(Desc->Type, HL.Val, V)) {
      Error = "output '" + HL.Ident + "' has unknown type";
      return false;
    }
    Events.push_back({HL.Instant, Desc->Name, V});
  }
  return true;
}

/// The compile command of every C round-trip: the emitted code must be
/// warning-free strict C99 (CI's "every oracle-emitted C file compiles
/// -std=c99 -Wall -Werror" gate runs right here, on every oracle run).
std::string ccCommand(const std::string &Bin, const std::string &CPath,
                      const std::string &LogPath,
                      const std::string &Extra = std::string()) {
  return hostCC() + " -std=c99 -Wall -Werror -O1" + Extra + " -o " + Bin +
         " " + CPath + " > " + LogPath + " 2>&1";
}

/// Compiles and runs the emitted C; fills \p Events with the subprocess
/// trace and \p CGuards / \p CExecuted with the generated counters.
/// \returns false with \p Error set on any failure.
bool runCRoundTrip(Compilation &C, const std::string &ProcName,
                   const OracleOptions &Options,
                   std::vector<OutputEvent> &Events, uint64_t &CGuards,
                   uint64_t &CExecuted, bool &FleetOk, std::string &Error) {
  const std::string &CC = hostCC();
  if (CC.empty()) {
    Error = "no host C compiler";
    return false;
  }

  char Template[] = "/tmp/sigc-oracle-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir) {
    Error = "mkdtemp failed";
    return false;
  }
  std::string D = Dir;
  std::string CPath = D + "/prog.c", Bin = D + "/prog";
  std::string OutPath = D + "/out.txt", LogPath = D + "/cc.log";

  CEmitOptions EO;
  EO.WithDriver = false;
  std::string Proc = sanitizeIdent(ProcName);
  std::string CSource = emitC(C.Compiled, Proc, EO);
  CSource += buildHarness(C, Proc, Options);

  bool Ok = false;
  {
    std::ofstream OutFile(CPath);
    OutFile << CSource;
  }
  // A small lane-block forces the fleet self-check to span several sweep
  // blocks even for a handful of instances.
  std::string Extra =
      Options.FleetInstances ? " -DSIGC_FLEET_BLOCK=2" : "";
  if (std::system(ccCommand(Bin, CPath, LogPath, Extra).c_str()) != 0) {
    Error = "host C compilation failed:\n" + readFile(LogPath) +
            "--- emitted C ---\n" + CSource;
  } else if (std::system((Bin + " > " + OutPath + " 2>/dev/null").c_str()) !=
             0) {
    Error = "emitted program exited non-zero:\n" + readFile(OutPath);
  } else {
    Ok = parseHarnessTrace(readFile(OutPath), C.Compiled, Events, CGuards,
                           CExecuted, FleetOk, Error);
  }

  for (const std::string &F : {CPath, Bin, OutPath, LogPath})
    std::remove(F.c_str());
  rmdir(D.c_str());
  return Ok;
}

} // namespace

bool sigc::hostCCompilerAvailable() { return !hostCC().empty(); }

const std::string &sigc::hostCCompilerCommand() { return hostCC(); }

OracleReport sigc::checkDifferential(const std::string &Name,
                                     const std::string &Source,
                                     const OracleOptions &Options) {
  OracleReport R;

  auto C = compileSource("<oracle:" + Name + ">", Source);
  if (!C->Ok) {
    R.Error = failure(Name, "compilation failed during " +
                          std::string(C->failedStageName()),
                      C->Diags.render(), Source);
    return R;
  }

  // Path 1: reference fixpoint interpreter.
  RandomEnvironment EnvRef(Options.EnvSeed, Options.TickPermille);
  KernelInterp Ref(*C->Kernel, C->Clocks, *C->Forest, C->names());
  if (!Ref.run(EnvRef, Options.Instants)) {
    R.Error = failure(Name, "reference interpreter got stuck", "", Source);
    return R;
  }

  // Path 2: flat step program.
  RandomEnvironment EnvFlat(Options.EnvSeed, Options.TickPermille);
  StepExecutor ExecFlat(*C->Kernel, C->Step);
  ExecFlat.run(EnvFlat, Options.Instants, ExecMode::Flat);

  // Path 3: nested step program.
  RandomEnvironment EnvNested(Options.EnvSeed, Options.TickPermille);
  StepExecutor ExecNested(*C->Kernel, C->Step);
  ExecNested.run(EnvNested, Options.Instants, ExecMode::Nested);
  R.GuardTestsNested = ExecNested.guardTests();
  R.ExecutedNested = ExecNested.executed();
  R.GuardTestsFlat = ExecFlat.guardTests();
  R.ExecutedFlat = ExecFlat.executed();

  // Path 4: the slot-resolved VM (the Compilation's single lowered IR).
  RandomEnvironment EnvVm(Options.EnvSeed, Options.TickPermille);
  VmExecutor ExecVm(C->Compiled);
  ExecVm.run(EnvVm, Options.Instants);
  R.GuardTestsVm = ExecVm.guardTests();
  R.ExecutedVm = ExecVm.executed();

  // Path 4b: the same VM batched — stepN windows over the bulk
  // environment exchange must reproduce the unbatched run bit for bit,
  // counters included.
  RandomEnvironment EnvVmB(Options.EnvSeed, Options.TickPermille);
  VmExecutor ExecVmB(C->Compiled);
  ExecVmB.runBatched(EnvVmB, Options.Instants,
                     Options.BatchSize ? Options.BatchSize : 1);
  if (formatEvents(EnvVmB.outputs()) != formatEvents(EnvVm.outputs())) {
    TraceDiff BD = compareTraces("step-vm", EnvVm.outputs(), "step-vm-batch",
                                 EnvVmB.outputs());
    R.Error = failure(Name, "batched VM diverges from unbatched",
                      BD.Equal ? "same events, different order\n" : BD.Report,
                      Source);
    return R;
  }
  if (ExecVmB.guardTests() != R.GuardTestsVm ||
      ExecVmB.executed() != R.ExecutedVm) {
    R.Error = failure(
        Name, "batched VM counters diverge from unbatched",
        "vm:       guards=" + std::to_string(R.GuardTestsVm) +
            " executed=" + std::to_string(R.ExecutedVm) +
            "\nvm-batch: guards=" + std::to_string(ExecVmB.guardTests()) +
            " executed=" + std::to_string(ExecVmB.executed()) + "\n",
        Source);
    return R;
  }

  // Path 4t: record -> replay through the trace format. The batched VM
  // run is mirrored into an in-memory trace; replaying that trace as the
  // environment — at a *different* batch size — must reproduce the
  // events and counters of the live run, the replayed outputs must match
  // the recorded ones, and re-recording the replay through an echo
  // writer with the same frame capacity must reproduce the original
  // recording byte for byte (the writer owns the framing, so recorded
  // bytes are independent of execution batch size).
  {
    unsigned B = Options.BatchSize ? Options.BatchSize : 1;
    // A small frame capacity forces several frames even for short runs.
    TraceSpec Spec = TraceSpec::fromStep(C->Compiled, Name, /*FrameInstants=*/8);
    MemorySink Sink;
    TraceWriter Writer(Sink, Spec);
    RandomEnvironment RndRec(Options.EnvSeed, Options.TickPermille);
    RecordingEnvironment EnvRec(RndRec, Writer);
    VmExecutor ExecRec(C->Compiled);
    ExecRec.runBatched(EnvRec, Options.Instants, B);
    if (!Writer.finish(Options.Instants)) {
      R.Error = failure(Name, "trace writer failed", "", Source);
      return R;
    }
    if (formatEvents(RndRec.outputs()) != formatEvents(EnvVm.outputs())) {
      R.Error = failure(Name, "recording wrapper perturbed the run",
                        compareTraces("step-vm", EnvVm.outputs(), "recorded",
                                      RndRec.outputs())
                            .Report,
                        Source);
      return R;
    }

    MemoryTraceSource SrcT(Sink.bytes());
    TraceReader Reader(SrcT);
    if (!Reader.readHeader() || !Reader.matchesStep(C->Compiled)) {
      R.Error = failure(Name, "recorded trace does not read back",
                        Reader.error().str() + "\n", Source);
      return R;
    }
    TraceEnvironment EnvTr(Reader);
    EnvTr.setVerifyOutputs(true);
    EnvTr.setCollectOutputs(true);
    MemorySink EchoSink;
    TraceWriter Echo(EchoSink, Reader.spec());
    EnvTr.setEcho(&Echo);
    VmExecutor ExecTr(C->Compiled);
    unsigned At = 0;
    for (;;) {
      unsigned N = EnvTr.prepare(At, B + 3); // Deliberately different window.
      if (N == 0)
        break;
      ExecTr.stepN(EnvTr, At, N);
      At += N;
    }
    if (EnvTr.failed() || At != Options.Instants) {
      R.Error = failure(Name, "trace replay stopped early",
                        "replayed " + std::to_string(At) + " of " +
                            std::to_string(Options.Instants) + " instants: " +
                            EnvTr.error().str() + "\n",
                        Source);
      return R;
    }
    Echo.finish(At);
    if (!EnvTr.divergence().empty()) {
      R.Error = failure(Name, "replay diverges from the recorded outputs",
                        EnvTr.divergence() + "\n", Source);
      return R;
    }
    if (formatEvents(EnvTr.outputs()) != formatEvents(EnvVm.outputs())) {
      R.Error = failure(Name, "replayed events diverge from the live run",
                        compareTraces("step-vm", EnvVm.outputs(), "replay",
                                      EnvTr.outputs())
                            .Report,
                        Source);
      return R;
    }
    if (ExecTr.guardTests() != R.GuardTestsVm ||
        ExecTr.executed() != R.ExecutedVm) {
      R.Error = failure(
          Name, "replay counters diverge from the live run",
          "vm:     guards=" + std::to_string(R.GuardTestsVm) +
              " executed=" + std::to_string(R.ExecutedVm) +
              "\nreplay: guards=" + std::to_string(ExecTr.guardTests()) +
              " executed=" + std::to_string(ExecTr.executed()) + "\n",
          Source);
      return R;
    }
    if (EchoSink.bytes() != Sink.bytes()) {
      R.Error = failure(Name,
                        "re-recorded replay is not byte-identical to the "
                        "original trace",
                        "original " + std::to_string(Sink.bytes().size()) +
                            " bytes, re-recorded " +
                            std::to_string(EchoSink.bytes().size()) +
                            " bytes\n",
                        Source);
      return R;
    }
  }

  // Path 4c: the fleet executor — FleetInstances instances of the same
  // bytecode swept in SoA lane blocks across shard threads, batched
  // through the same stepN windows as 4b. Instance j is seeded
  // EnvSeed+j (instance 0 thus replays the scalar legs' inputs); every
  // instance's trace must equal a scalar VM run of that instance alone,
  // and the fleet's counters must be exactly the per-instance sums.
  if (Options.FleetInstances) {
    unsigned M = Options.FleetInstances;
    std::vector<std::unique_ptr<RandomEnvironment>> FleetOwned;
    std::vector<Environment *> FleetEnvs;
    for (unsigned J = 0; J < M; ++J) {
      FleetOwned.push_back(std::make_unique<RandomEnvironment>(
          Options.EnvSeed + J, Options.TickPermille));
      FleetEnvs.push_back(FleetOwned.back().get());
    }
    FleetExecutor::Config FC;
    FC.LaneBlock = Options.FleetLaneBlock ? Options.FleetLaneBlock : 1;
    FC.Threads = Options.FleetThreads ? Options.FleetThreads : 1;
    FleetExecutor Fleet(C->Compiled, M, FC);
    Fleet.runBatched(FleetEnvs, Options.Instants,
                     Options.BatchSize ? Options.BatchSize : 1);
    R.GuardTestsFleet = Fleet.guardTests();
    R.ExecutedFleet = Fleet.executed();

    uint64_t SumGuards = 0, SumExecuted = 0;
    for (unsigned J = 0; J < M; ++J) {
      RandomEnvironment EnvJ(Options.EnvSeed + J, Options.TickPermille);
      VmExecutor ExecJ(C->Compiled);
      ExecJ.run(EnvJ, Options.Instants);
      SumGuards += ExecJ.guardTests();
      SumExecuted += ExecJ.executed();
      TraceDiff FD = compareTraces("scalar-vm", EnvJ.outputs(), "fleet",
                                   FleetOwned[J]->outputs());
      if (!FD.Equal) {
        R.Error = failure(Name,
                          "fleet instance " + std::to_string(J) +
                              " diverges from the scalar VM (lane block " +
                              std::to_string(FC.LaneBlock) + ", " +
                              std::to_string(FC.Threads) + " threads)",
                          FD.Report, Source);
        return R;
      }
    }
    if (R.GuardTestsFleet != SumGuards || R.ExecutedFleet != SumExecuted) {
      R.Error = failure(
          Name, "fleet counters diverge from per-instance scalar sums",
          "scalar sum: guards=" + std::to_string(SumGuards) +
              " executed=" + std::to_string(SumExecuted) +
              "\nfleet:      guards=" + std::to_string(R.GuardTestsFleet) +
              " executed=" + std::to_string(R.ExecutedFleet) + "\n",
          Source);
      return R;
    }
  }

  TraceDiff D = compareTraces("interp", EnvRef.outputs(), "step-flat",
                              EnvFlat.outputs());
  if (!D.Equal) {
    R.Error = failure(Name, "interpreter vs flat step divergence", D.Report,
                      Source);
    return R;
  }
  D = compareTraces("step-flat", EnvFlat.outputs(), "step-nested",
                    EnvNested.outputs());
  if (!D.Equal) {
    R.Error =
        failure(Name, "flat vs nested step divergence", D.Report, Source);
    return R;
  }
  D = compareTraces("step-nested", EnvNested.outputs(), "step-vm",
                    EnvVm.outputs());
  if (!D.Equal) {
    R.Error = failure(Name, "nested vs slot-VM divergence", D.Report, Source);
    return R;
  }
  // The VM linearizes the nested structure: its guard economics must be
  // exactly the nested executor's, never flat's.
  if (R.GuardTestsVm != R.GuardTestsNested ||
      R.ExecutedVm != R.ExecutedNested) {
    R.Error = failure(
        Name, "slot-VM guard/instruction counters diverge from nested",
        "nested: guards=" + std::to_string(R.GuardTestsNested) +
            " executed=" + std::to_string(R.ExecutedNested) +
            "\nvm:     guards=" + std::to_string(R.GuardTestsVm) +
            " executed=" + std::to_string(R.ExecutedVm) + "\n",
        Source);
    return R;
  }

  // Path 5: the emitted C, through the host compiler. Same bytecode,
  // same trace, and the generated counters must land exactly on the
  // VM's.
  if (Options.EmitCRoundTrip && hostCCompilerAvailable()) {
    const StringInterner &Names = C->names();
    std::string ProcName(Names.spelling(C->Decl->Name));
    std::vector<OutputEvent> CEvents;
    std::string Error;
    if (!runCRoundTrip(*C, ProcName, Options, CEvents, R.GuardTestsC,
                       R.ExecutedC, R.CFleetChecked, Error)) {
      R.Error = failure(Name, "emitted-C round-trip failed", Error, Source);
      return R;
    }
    R.CRoundTripRan = true;
    // The harness only prints "#fleet ok" after its in-C self-check of
    // _step_fleet against per-instance _step_batch passed; a missing
    // line means the check never ran.
    if (Options.FleetInstances && !R.CFleetChecked) {
      R.Error = failure(Name, "emitted-C fleet self-check did not run", "",
                        Source);
      return R;
    }
    D = compareTraces("step-nested", EnvNested.outputs(), "emitted-c",
                      CEvents);
    if (!D.Equal) {
      R.Error = failure(Name, "in-process vs emitted-C divergence", D.Report,
                        Source);
      return R;
    }
    if (R.GuardTestsC != R.GuardTestsVm || R.ExecutedC != R.ExecutedVm) {
      R.Error = failure(
          Name, "emitted-C guard/instruction counters diverge from the VM",
          "vm: guards=" + std::to_string(R.GuardTestsVm) +
              " executed=" + std::to_string(R.ExecutedVm) +
              "\nc:  guards=" + std::to_string(R.GuardTestsC) +
              " executed=" + std::to_string(R.ExecutedC) + "\n",
          Source);
      return R;
    }
  }

  // Path 6: the native tier's hot swap, at every batch boundary k. One
  // artifact compiled through the production cache path (emit, host cc,
  // atomic publish, dlopen), then for each k: interpret k instants,
  // hand the session's delay state and counters to the native step
  // function, finish native. Trace and final counters must be exactly
  // the pure VM run's — the promotion is execution-invisible.
  if (Options.NativeSwap && hostCCompilerAvailable()) {
    char Template[] = "/tmp/sigc-oracle-native-XXXXXX";
    char *Dir = mkdtemp(Template);
    if (!Dir) {
      R.Error = failure(Name, "native-swap leg: mkdtemp failed", "", Source);
      return R;
    }
    NativeCache Cache(Dir);
    std::string Hash = hashCompiledStep(C->Compiled);
    std::string SwapError;
    std::unique_ptr<NativeModule> Mod =
        Cache.compileAndPublish(C->Compiled, Hash, SwapError);
    if (Mod) {
      SwapError.clear();
      unsigned Step = Options.BatchSize ? Options.BatchSize : 1;
      for (unsigned K = 0; K < Options.Instants; K += Step) {
        RandomEnvironment Env(Options.EnvSeed, Options.TickPermille);
        VmExecutor Vm(C->Compiled);
        if (K)
          Vm.stepN(Env, 0, K);
        NativeExecutor NX(C->Compiled, *Mod);
        NX.importState(Vm.stateSlots(), Vm.guardTests(), Vm.executed());
        NX.stepN(Env, K, Options.Instants - K);
        if (formatEvents(Env.outputs()) != formatEvents(EnvVm.outputs())) {
          TraceDiff SD = compareTraces("step-vm", EnvVm.outputs(),
                                       "swap-at-" + std::to_string(K),
                                       Env.outputs());
          SwapError = "VM -> native swap at instant " + std::to_string(K) +
                      " diverges from the pure VM run\n" + SD.Report;
          break;
        }
        if (NX.guardTests() != R.GuardTestsVm ||
            NX.executed() != R.ExecutedVm) {
          SwapError =
              "VM -> native swap at instant " + std::to_string(K) +
              ": counters diverge from the pure VM run\n"
              "vm:     guards=" + std::to_string(R.GuardTestsVm) +
              " executed=" + std::to_string(R.ExecutedVm) +
              "\nswapped: guards=" + std::to_string(NX.guardTests()) +
              " executed=" + std::to_string(NX.executed()) + "\n";
          break;
        }
      }
    }
    Mod.reset(); // dlclose before the artifact is unlinked
    std::remove(Cache.soPath(Hash).c_str());
    rmdir(Dir);
    if (!SwapError.empty()) {
      R.Error = failure(Name, "native hot-swap leg failed", SwapError,
                        Source);
      return R;
    }
    R.NativeSwapRan = true;
  }

  R.Ok = true;
  return R;
}

OracleReport sigc::checkRandomDifferential(
    uint64_t Seed, const RandomProgramOptions &GenOptions,
    const OracleOptions &Options) {
  std::string Name = "random-" + std::to_string(Seed);
  std::string Source = generateRandomProgram("RAND", Seed, GenOptions);
  return checkDifferential(Name, Source, Options);
}

//===----------------------------------------------------------------------===//
// Linked-system differential oracle
//===----------------------------------------------------------------------===//

namespace {

/// Signal names of the clock class behind clock input \p ClockInputIdx of
/// \p C. (Clock slots are assigned in forest DFS order, so the slot is
/// the node's DFS position.)
std::vector<std::string> clockInputClassSignals(Compilation &C,
                                                size_t ClockInputIdx) {
  std::vector<std::string> Names;
  int Slot = C.Step.ClockInputs[ClockInputIdx].Slot;
  std::vector<ForestNodeId> Dfs = C.Forest->dfsOrder();
  if (Slot < 0 || Slot >= static_cast<int>(Dfs.size()))
    return Names;
  ClockVarId Rep = C.Forest->rep(C.Forest->node(Dfs[Slot]).Rep);
  for (ClockVarId V = 0; V < C.Clocks.numVars(); ++V) {
    if (C.Forest->rep(V) != Rep ||
        C.Clocks.varInfo(V).Kind != ClockVarKind::SignalClock)
      continue;
    Names.push_back(std::string(
        C.names().spelling(C.Kernel->Signals[C.Clocks.varInfo(V).Signal]
                               .Name)));
  }
  return Names;
}

/// Separate compilation cannot promise that an anonymous master clock
/// keeps its *name* when the composed program is compiled monolithically:
/// a consumer equation over a channel joins the producer's clock class,
/// and the class representative — whose name the step program uses for
/// the environment tick query — may change. The clock *interface*
/// correspondence is still exact, so the oracle computes it: each mono
/// free clock maps to the unique unbound linked clock whose class shares
/// a signal with it. The mono run is then driven through this renaming,
/// and traces must match bit for bit.
bool monoToLinkedClockNames(Compilation &Mono, LinkedSystem &Sys,
                            std::map<std::string, std::string> &Map,
                            std::string &Error) {
  struct LinkedClock {
    std::string Name;
    std::vector<std::string> Signals;
  };
  std::vector<LinkedClock> Unbound;
  for (const LinkedRoot &R : Sys.Roots)
    Unbound.push_back(
        {R.Name, clockInputClassSignals(*Sys.Units[R.Unit].Comp,
                                        static_cast<size_t>(R.ClockInput))});

  for (size_t K = 0; K < Mono.Step.ClockInputs.size(); ++K) {
    const std::string &MonoName = Mono.Step.ClockInputs[K].Name;
    std::vector<std::string> MonoSigs = clockInputClassSignals(Mono, K);
    const LinkedClock *Match = nullptr;
    for (const LinkedClock &LC : Unbound)
      for (const std::string &S : LC.Signals)
        for (const std::string &M : MonoSigs)
          if (S == M) {
            if (Match && Match != &LC) {
              Error = "mono clock '" + MonoName +
                      "' maps to several linked clocks ('" + Match->Name +
                      "', '" + LC.Name + "')";
              return false;
            }
            Match = &LC;
          }
    if (!Match) {
      Error = "mono clock '" + MonoName + "' maps to no linked clock";
      return false;
    }
    Map[MonoName] = Match->Name;
  }
  return true;
}

/// Environment adapter renaming clock bindings through the mono-to-linked
/// interface correspondence; everything else passes through. The renaming
/// happens once at binding time (ids map to the inner environment's ids);
/// the hot path is pure id forwarding. Outputs record locally, so the
/// adapter's trace is comparable on its own.
class RenamedClockEnvironment : public Environment {
public:
  using Environment::clockTick;
  using Environment::inputValue;
  using Environment::writeOutput;

  RenamedClockEnvironment(Environment &Inner,
                          const std::map<std::string, std::string> &Map)
      : Inner(Inner), Map(Map) {}

  EnvClockId resolveClock(std::string_view Name) override {
    EnvClockId Id = Environment::resolveClock(Name);
    auto It = Map.find(std::string(Name));
    if (Id >= InnerClock.size())
      InnerClock.resize(Id + 1, InvalidEnvId);
    InnerClock[Id] =
        Inner.resolveClock(It == Map.end() ? std::string(Name) : It->second);
    return Id;
  }
  EnvInputId resolveInput(std::string_view Name, TypeKind Type) override {
    EnvInputId Id = Environment::resolveInput(Name, Type);
    if (Id >= InnerInput.size())
      InnerInput.resize(Id + 1, InvalidEnvId);
    InnerInput[Id] = Inner.resolveInput(Name, Type);
    return Id;
  }

  bool clockTick(EnvClockId Clock, unsigned Instant) override {
    return Inner.clockTick(InnerClock[Clock], Instant);
  }
  Value inputValue(EnvInputId Input, unsigned Instant) override {
    return Inner.inputValue(InnerInput[Input], Instant);
  }

private:
  Environment &Inner;
  const std::map<std::string, std::string> &Map;
  std::vector<EnvClockId> InnerClock;
  std::vector<EnvInputId> InnerInput;
};

/// Scripted-replay harness for a linked emission: every external tick and
/// input value of every instant is precomputed from the same
/// RandomEnvironment the in-process paths used and baked into arrays.
/// Instants run through the batched entry point of the fused step; its
/// generated counters print as one #counters line.
std::string buildLinkedHarness(const LinkedCInterface &CI,
                               const std::string &SysName,
                               const OracleOptions &Options) {
  RandomEnvironment Env(Options.EnvSeed, Options.TickPermille);
  unsigned N = Options.Instants;

  std::string Out = "\n#include <stdio.h>\n\n";
  for (const auto &T : CI.Ticks) {
    Out += "static const int " + T.Field + "_v[" + std::to_string(N) + "] = {";
    for (unsigned I = 0; I < N; ++I)
      Out += std::string(Env.clockTick(T.ClockName, I) ? "1" : "0") + ",";
    Out += "};\n";
  }
  for (const auto &V : CI.Inputs) {
    const char *CType = V.Type == TypeKind::Integer ? "long"
                        : V.Type == TypeKind::Real  ? "double"
                                                    : "int";
    Out += std::string("static const ") + CType + " in_" + V.Field + "_v[" +
           std::to_string(N) + "] = {";
    for (unsigned I = 0; I < N; ++I)
      Out += cInputLiteral(Env.inputValue(V.SignalName, V.Type, I)) + ",";
    Out += "};\n";
  }

  Out += "\nstatic " + SysName + "_in_t in_v[" + std::to_string(N) + "];\n";
  Out += "static " + SysName + "_out_t out_v[" + std::to_string(N) + "];\n";
  Out += "\nint main(void) {\n";
  Out += "  " + SysName + "_state_t st;\n";
  Out += "  unsigned i;\n";
  Out += "  " + SysName + "_init(&st);\n";
  Out += "  for (i = 0; i < " + std::to_string(N) + "; ++i) {\n";
  for (const auto &T : CI.Ticks)
    Out += "    in_v[i]." + T.Field + " = " + T.Field + "_v[i];\n";
  for (const auto &V : CI.Inputs)
    Out += "    in_v[i]." + V.Field + " = in_" + V.Field + "_v[i];\n";
  Out += "  }\n";
  Out += "  " + SysName + "_step_batch(&st, in_v, out_v, " +
         std::to_string(N) + ");\n";
  Out += "  for (i = 0; i < " + std::to_string(N) + "; ++i) {\n";
  for (const auto &V : CI.Outputs) {
    const char *Fmt = V.Type == TypeKind::Integer ? "%ld"
                      : V.Type == TypeKind::Real  ? "%.17g"
                                                  : "%d";
    Out += "    if (out_v[i]." + V.Field + "_present) printf(\"%u " +
           V.Field + "=" + Fmt + "\\n\", i, out_v[i]." + V.Field + ");\n";
  }
  Out += "  }\n";
  Out += "  printf(\"#counters guards=%llu executed=%llu\\n\", "
         "st.guard_tests, st.executed);\n";
  Out += "  return 0;\n}\n";
  return Out;
}

/// Parses the linked harness' stdout back into output events plus the
/// summed per-unit counters (line grammar shared with the
/// single-process parser via splitHarnessLine/parseTypedValue).
bool parseLinkedTrace(const std::string &Text, const LinkedCInterface &CI,
                      std::vector<OutputEvent> &Events, uint64_t &CGuards,
                      uint64_t &CExecuted, std::string &Error) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    HarnessLine HL;
    if (!splitHarnessLine(Line, HL, CGuards, CExecuted, Error))
      return false;
    if (HL.IsCounters || HL.IsFleetOk)
      continue;

    const LinkedCInterface::ValueField *Desc = nullptr;
    for (const auto &V : CI.Outputs)
      if (V.Field == HL.Ident)
        Desc = &V;
    if (!Desc) {
      Error = "harness printed unknown output '" + HL.Ident + "'";
      return false;
    }
    Value V;
    if (!parseTypedValue(Desc->Type, HL.Val, V)) {
      Error = "output '" + HL.Ident + "' has unknown type";
      return false;
    }
    Events.push_back({HL.Instant, Desc->SignalName, V});
  }
  return true;
}

/// Compiles and runs the linked C emission; fills \p Events with the
/// subprocess trace.
bool runLinkedCRoundTrip(const LinkedSystem &Sys,
                         const OracleOptions &Options,
                         std::vector<OutputEvent> &Events, uint64_t &CGuards,
                         uint64_t &CExecuted, std::string &Error) {
  const std::string &CC = hostCC();
  if (CC.empty()) {
    Error = "no host C compiler";
    return false;
  }
  char Template[] = "/tmp/sigc-linkoracle-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir) {
    Error = "mkdtemp failed";
    return false;
  }
  std::string D = Dir;
  std::string CPath = D + "/sys.c", Bin = D + "/sys";
  std::string OutPath = D + "/out.txt", LogPath = D + "/cc.log";

  CEmitOptions EO;
  EO.WithDriver = false;
  std::string SysName = "linked_sys";
  LinkedCInterface CI = linkedCInterface(Sys);
  std::string CSource = emitLinkedC(Sys, SysName, EO);
  CSource += buildLinkedHarness(CI, SysName, Options);

  bool Ok = false;
  {
    std::ofstream OutFile(CPath);
    OutFile << CSource;
  }
  if (std::system(ccCommand(Bin, CPath, LogPath).c_str()) != 0) {
    Error = "host C compilation failed:\n" + readFile(LogPath) +
            "--- emitted C ---\n" + CSource;
  } else if (std::system((Bin + " > " + OutPath + " 2>/dev/null").c_str()) !=
             0) {
    Error = "emitted linked program exited non-zero";
  } else {
    Ok = parseLinkedTrace(readFile(OutPath), CI, Events, CGuards, CExecuted,
                          Error);
  }

  for (const std::string &F : {CPath, Bin, OutPath, LogPath})
    std::remove(F.c_str());
  rmdir(D.c_str());
  return Ok;
}

} // namespace

OracleReport sigc::checkLinkedDifferential(
    const std::string &Name, const std::vector<LinkInput> &Processes,
    const std::string &ComposedSource, const OracleOptions &Options) {
  OracleReport R;
  std::string AllSources;
  for (const LinkInput &P : Processes)
    AllSources += P.Source;
  AllSources += "--- composed ---\n" + ComposedSource;

  // Separate compilation + link.
  LinkResult Link = compileAndLinkSources(Processes);
  if (!Link.Sys) {
    R.Error = failure(Name, "link failed", Link.Error + "\n", AllSources);
    return R;
  }
  LinkedSystem &Sys = *Link.Sys;

  // Linking must not have re-resolved any unit.
  for (size_t U = 0; U < Sys.Units.size(); ++U)
    if (Sys.ForestNodesAtLink[U] != Sys.Units[U].Iface.ForestNodes) {
      R.Error = failure(Name, "link re-resolved a unit's forest",
                        "unit " + Sys.Units[U].Name + "\n", AllSources);
      return R;
    }

  // Monolithic compilation of the textual composition.
  auto Mono = compileSource("<linked-oracle:" + Name + ">", ComposedSource);
  if (!Mono->Ok) {
    R.Error = failure(Name,
                      "monolithic compilation failed during " +
                          std::string(Mono->failedStageName()),
                      Mono->Diags.render(), AllSources);
    return R;
  }

  // The clock-interface correspondence: mono master-clock names need not
  // survive separate compilation; structure must (see the helper above).
  std::map<std::string, std::string> ClockMap;
  std::string MapError;
  if (!monoToLinkedClockNames(*Mono, Sys, ClockMap, MapError)) {
    R.Error = failure(Name, "clock-interface correspondence failed",
                      MapError + "\n", AllSources);
    return R;
  }

  // Path 1a: monolithic fixpoint interpreter (reference).
  RandomEnvironment EnvRef(Options.EnvSeed, Options.TickPermille);
  RenamedClockEnvironment EnvRefRenamed(EnvRef, ClockMap);
  KernelInterp Ref(*Mono->Kernel, Mono->Clocks, *Mono->Forest,
                   Mono->names());
  if (!Ref.run(EnvRefRenamed, Options.Instants)) {
    R.Error = failure(Name, "monolithic interpreter got stuck", "",
                      AllSources);
    return R;
  }

  // Path 1b: monolithic nested step program.
  RandomEnvironment EnvMono(Options.EnvSeed, Options.TickPermille);
  RenamedClockEnvironment EnvMonoRenamed(EnvMono, ClockMap);
  StepExecutor ExecMono(*Mono->Kernel, Mono->Step);
  ExecMono.run(EnvMonoRenamed, Options.Instants, ExecMode::Nested);
  R.GuardTestsMono = ExecMono.guardTests();

  TraceDiff D = compareTraces("mono-interp", EnvRefRenamed.outputs(),
                              "mono-step", EnvMonoRenamed.outputs());
  if (!D.Equal) {
    R.Error = failure(Name, "monolithic interp vs step divergence", D.Report,
                      AllSources);
    return R;
  }

  // Path 2: the linked system, per-unit step programs wired by channels.
  RandomEnvironment EnvLinked(Options.EnvSeed, Options.TickPermille);
  LinkedExecutor Linked(Sys);
  if (!Linked.run(EnvLinked, Options.Instants)) {
    R.Error = failure(Name, "linked execution stopped", Linked.error() + "\n",
                      AllSources);
    return R;
  }
  R.GuardTestsLinked = Linked.guardTests();

  D = compareTraces("mono-step", EnvMonoRenamed.outputs(), "linked",
                    EnvLinked.outputs());
  if (!D.Equal) {
    R.Error = failure(Name, "monolithic vs linked divergence", D.Report,
                      AllSources);
    return R;
  }

  // Path 2b: the linked system batched per unit — stepN windows must
  // reproduce the unbatched linked run bit for bit, counters included.
  RandomEnvironment EnvLinkedB(Options.EnvSeed, Options.TickPermille);
  LinkedExecutor LinkedB(Sys);
  if (!LinkedB.runBatched(EnvLinkedB, Options.Instants,
                          Options.BatchSize ? Options.BatchSize : 1)) {
    R.Error = failure(Name, "batched linked execution stopped",
                      LinkedB.error() + "\n", AllSources);
    return R;
  }
  if (formatEvents(EnvLinkedB.outputs()) != formatEvents(EnvLinked.outputs())) {
    TraceDiff BD = compareTraces("linked", EnvLinked.outputs(),
                                 "linked-batch", EnvLinkedB.outputs());
    R.Error = failure(Name, "batched linked diverges from unbatched",
                      BD.Equal ? "same events, different order\n" : BD.Report,
                      AllSources);
    return R;
  }
  if (LinkedB.guardTests() != Linked.guardTests() ||
      LinkedB.executed() != Linked.executed()) {
    R.Error = failure(
        Name, "batched linked counters diverge from unbatched",
        "linked:       guards=" + std::to_string(Linked.guardTests()) +
            " executed=" + std::to_string(Linked.executed()) +
            "\nlinked-batch: guards=" + std::to_string(LinkedB.guardTests()) +
            " executed=" + std::to_string(LinkedB.executed()) + "\n",
        AllSources);
    return R;
  }

  // Path 2c: the fleet executor over the fused step — FleetInstances
  // instances swept in SoA lane blocks across shard threads. Instance j
  // is seeded EnvSeed+j; every instance's trace must equal a linked run
  // of that instance alone, and the fleet's counters must be exactly
  // the per-instance sums.
  if (Options.FleetInstances) {
    unsigned M = Options.FleetInstances;
    std::vector<std::unique_ptr<RandomEnvironment>> FleetOwned;
    std::vector<Environment *> FleetEnvs;
    for (unsigned J = 0; J < M; ++J) {
      FleetOwned.push_back(std::make_unique<RandomEnvironment>(
          Options.EnvSeed + J, Options.TickPermille));
      FleetEnvs.push_back(FleetOwned.back().get());
    }
    FleetExecutor::Config FC;
    FC.LaneBlock = Options.FleetLaneBlock ? Options.FleetLaneBlock : 1;
    FC.Threads = Options.FleetThreads ? Options.FleetThreads : 1;
    FleetExecutor Fleet(Sys.Fused, M, FC);
    Fleet.runBatched(FleetEnvs, Options.Instants,
                     Options.BatchSize ? Options.BatchSize : 1);
    R.GuardTestsFleet = Fleet.guardTests();
    R.ExecutedFleet = Fleet.executed();

    uint64_t SumGuards = 0, SumExecuted = 0;
    for (unsigned J = 0; J < M; ++J) {
      RandomEnvironment EnvJ(Options.EnvSeed + J, Options.TickPermille);
      LinkedExecutor ExecJ(Sys);
      if (!ExecJ.run(EnvJ, Options.Instants)) {
        R.Error = failure(Name,
                          "linked execution stopped for fleet instance " +
                              std::to_string(J),
                          ExecJ.error() + "\n", AllSources);
        return R;
      }
      SumGuards += ExecJ.guardTests();
      SumExecuted += ExecJ.executed();
      TraceDiff FD = compareTraces("linked-vm", EnvJ.outputs(),
                                   "linked-fleet", FleetOwned[J]->outputs());
      if (!FD.Equal) {
        R.Error = failure(Name,
                          "linked fleet instance " + std::to_string(J) +
                              " diverges from the linked VM (lane block " +
                              std::to_string(FC.LaneBlock) + ", " +
                              std::to_string(FC.Threads) + " threads)",
                          FD.Report, AllSources);
        return R;
      }
    }
    if (R.GuardTestsFleet != SumGuards || R.ExecutedFleet != SumExecuted) {
      R.Error = failure(
          Name, "linked fleet counters diverge from per-instance sums",
          "linked sum: guards=" + std::to_string(SumGuards) +
              " executed=" + std::to_string(SumExecuted) +
              "\nfleet:      guards=" + std::to_string(R.GuardTestsFleet) +
              " executed=" + std::to_string(R.ExecutedFleet) + "\n",
          AllSources);
      return R;
    }
  }

  // Path 3: the linked C emission, through the host compiler; the fused
  // step's generated counters must land on the linked VM's.
  if (Options.EmitCRoundTrip && hostCCompilerAvailable()) {
    std::vector<OutputEvent> CEvents;
    std::string Error;
    if (!runLinkedCRoundTrip(Sys, Options, CEvents, R.GuardTestsC,
                             R.ExecutedC, Error)) {
      R.Error = failure(Name, "linked-C round-trip failed", Error,
                        AllSources);
      return R;
    }
    R.CRoundTripRan = true;
    D = compareTraces("linked", EnvLinked.outputs(), "linked-c", CEvents);
    if (!D.Equal) {
      R.Error = failure(Name, "linked interp vs linked-C divergence",
                        D.Report, AllSources);
      return R;
    }
    if (R.GuardTestsC != Linked.guardTests() ||
        R.ExecutedC != Linked.executed()) {
      R.Error = failure(
          Name, "linked-C counters diverge from the linked VM",
          "linked: guards=" + std::to_string(Linked.guardTests()) +
              " executed=" + std::to_string(Linked.executed()) +
              "\nc:      guards=" + std::to_string(R.GuardTestsC) +
              " executed=" + std::to_string(R.ExecutedC) + "\n",
          AllSources);
      return R;
    }
  }

  R.Ok = true;
  return R;
}

OracleReport sigc::checkRandomPairDifferential(
    uint64_t Seed, const ProcessPairOptions &GenOptions,
    const OracleOptions &Options) {
  GeneratedPair Pair = generateProcessPair(Seed, GenOptions);
  std::vector<LinkInput> Processes = {{Pair.ProducerName, Pair.ProducerSource},
                                      {Pair.ConsumerName,
                                       Pair.ConsumerSource}};
  return checkLinkedDifferential("random-pair-" + std::to_string(Seed),
                                 Processes, Pair.ComposedSource, Options);
}
