//===--- Oracle.cpp -------------------------------------------------------===//

#include "testing/Oracle.h"

#include "codegen/CEmitter.h"
#include "driver/Driver.h"
#include "interp/Environment.h"
#include "interp/KernelInterp.h"
#include "interp/StepExecutor.h"
#include "testing/TraceCompare.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace sigc;

namespace {

/// Formats one failure report: header, diff, then the full source so the
/// failure reproduces from the log alone.
std::string failure(const std::string &Name, const std::string &What,
                    const std::string &Detail, const std::string &Source) {
  std::string Out = "[" + Name + "] " + What + "\n";
  if (!Detail.empty())
    Out += Detail;
  Out += "--- program ---\n" + Source;
  return Out;
}

/// The host compiler command, probed once ("" = none found).
const std::string &hostCC() {
  static const std::string CC = [] {
    for (const char *Cand : {"cc", "gcc", "clang"}) {
      std::string Probe =
          std::string("command -v ") + Cand + " >/dev/null 2>&1";
      if (std::system(Probe.c_str()) == 0)
        return std::string(Cand);
    }
    return std::string();
  }();
  return CC;
}

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Renders a C literal for \p V that round-trips exactly.
std::string cInputLiteral(const Value &V) {
  switch (V.Kind) {
  case TypeKind::Boolean:
  case TypeKind::Event:
    return V.asBool() ? "1" : "0";
  case TypeKind::Integer:
    return std::to_string(V.Int) + "L";
  case TypeKind::Real: {
    char Buf[64];
    std::snprintf(Buf, sizeof Buf, "%.17g", V.Real);
    return Buf;
  }
  case TypeKind::Unknown:
    break;
  }
  return "0";
}

/// Builds the scripted-replay harness appended to the emitted step code:
/// every free-clock tick and input value of every instant is precomputed
/// from the same RandomEnvironment the in-process paths used (its answers
/// are pure functions of seed, name and instant) and baked into arrays.
std::string buildHarness(const Compilation &C, const std::string &Proc,
                         const OracleOptions &Options) {
  const StepProgram &Step = C.Step;
  RandomEnvironment Env(Options.EnvSeed, Options.TickPermille);
  unsigned N = Options.Instants;

  std::string Out = "\n#include <stdio.h>\n\n";

  for (const auto &CI : Step.ClockInputs) {
    Out += "static const int tick_" + sanitizeIdent(CI.Name) + "_v[" +
           std::to_string(N) + "] = {";
    for (unsigned I = 0; I < N; ++I)
      Out += std::string(Env.clockTick(CI.Name, I) ? "1" : "0") + ",";
    Out += "};\n";
  }
  for (const auto &SI : Step.Inputs) {
    const char *CType = SI.Type == TypeKind::Integer  ? "long"
                        : SI.Type == TypeKind::Real ? "double"
                                                      : "int";
    Out += std::string("static const ") + CType + " in_" +
           sanitizeIdent(SI.Name) + "_v[" + std::to_string(N) + "] = {";
    for (unsigned I = 0; I < N; ++I)
      Out += cInputLiteral(Env.inputValue(SI.Name, SI.Type, I)) + ",";
    Out += "};\n";
  }

  Out += "\nint main(void) {\n";
  Out += "  " + Proc + "_state_t st;\n";
  Out += "  " + Proc + "_in_t in;\n";
  Out += "  " + Proc + "_out_t out;\n";
  Out += "  " + Proc + "_init(&st);\n";
  Out += "  for (unsigned i = 0; i < " + std::to_string(N) + "; ++i) {\n";
  for (const auto &CI : Step.ClockInputs) {
    std::string Id = sanitizeIdent(CI.Name);
    Out += "    in.tick_" + Id + " = tick_" + Id + "_v[i];\n";
  }
  for (const auto &SI : Step.Inputs) {
    std::string Id = sanitizeIdent(SI.Name);
    Out += "    in." + Id + " = in_" + Id + "_v[i];\n";
  }
  Out += "    " + Proc + "_step(&st, &in, &out);\n";
  for (const auto &SO : Step.Outputs) {
    std::string Id = sanitizeIdent(SO.Name);
    const char *Fmt = SO.Type == TypeKind::Integer  ? "%ld"
                      : SO.Type == TypeKind::Real ? "%.17g"
                                                    : "%d";
    Out += "    if (out." + Id + "_present) printf(\"%u " + Id + "=" + Fmt +
           "\\n\", i, out." + Id + ");\n";
  }
  Out += "  }\n  return 0;\n}\n";
  return Out;
}

/// Parses the harness' stdout back into output events.
bool parseHarnessTrace(const std::string &Text, const StepProgram &Step,
                       std::vector<OutputEvent> &Events,
                       std::string &Error) {
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    size_t Sp = Line.find(' ');
    size_t Eq = Line.find('=', Sp);
    if (Sp == std::string::npos || Eq == std::string::npos) {
      Error = "unparseable harness output line: '" + Line + "'";
      return false;
    }
    unsigned Instant =
        static_cast<unsigned>(std::strtoul(Line.c_str(), nullptr, 10));
    std::string Ident = Line.substr(Sp + 1, Eq - Sp - 1);
    std::string Val = Line.substr(Eq + 1);

    const StepProgram::SignalIODesc *Desc = nullptr;
    for (const auto &SO : Step.Outputs)
      if (sanitizeIdent(SO.Name) == Ident)
        Desc = &SO;
    if (!Desc) {
      Error = "harness printed unknown output '" + Ident + "'";
      return false;
    }

    Value V;
    switch (Desc->Type) {
    case TypeKind::Boolean:
      V = Value::makeBool(std::strtol(Val.c_str(), nullptr, 10) != 0);
      break;
    case TypeKind::Event:
      V = Value::makeEvent();
      break;
    case TypeKind::Integer:
      V = Value::makeInt(std::strtoll(Val.c_str(), nullptr, 10));
      break;
    case TypeKind::Real:
      V = Value::makeReal(std::strtod(Val.c_str(), nullptr));
      break;
    case TypeKind::Unknown:
      Error = "output '" + Ident + "' has unknown type";
      return false;
    }
    Events.push_back({Instant, Desc->Name, V});
  }
  return true;
}

/// Compiles and runs the emitted C; fills \p Events with the subprocess
/// trace. \returns false with \p Error set on any failure.
bool runCRoundTrip(Compilation &C, const std::string &ProcName,
                   const OracleOptions &Options,
                   std::vector<OutputEvent> &Events, std::string &Error) {
  const std::string &CC = hostCC();
  if (CC.empty()) {
    Error = "no host C compiler";
    return false;
  }

  char Template[] = "/tmp/sigc-oracle-XXXXXX";
  char *Dir = mkdtemp(Template);
  if (!Dir) {
    Error = "mkdtemp failed";
    return false;
  }
  std::string D = Dir;
  std::string CPath = D + "/prog.c", Bin = D + "/prog";
  std::string OutPath = D + "/out.txt", LogPath = D + "/cc.log";

  CEmitOptions EO;
  EO.Nested = Options.EmitNested;
  EO.WithDriver = false;
  std::string Proc = sanitizeIdent(ProcName);
  std::string CSource = emitC(*C.Kernel, C.Step, C.names(), Proc, EO);
  CSource += buildHarness(C, Proc, Options);

  bool Ok = false;
  {
    std::ofstream OutFile(CPath);
    OutFile << CSource;
  }
  std::string Compile =
      CC + " -O1 -o " + Bin + " " + CPath + " > " + LogPath + " 2>&1";
  if (std::system(Compile.c_str()) != 0) {
    Error = "host C compilation failed:\n" + readFile(LogPath) +
            "--- emitted C ---\n" + CSource;
  } else if (std::system((Bin + " > " + OutPath + " 2>/dev/null").c_str()) !=
             0) {
    Error = "emitted program exited non-zero";
  } else {
    Ok = parseHarnessTrace(readFile(OutPath), C.Step, Events, Error);
  }

  for (const std::string &F : {CPath, Bin, OutPath, LogPath})
    std::remove(F.c_str());
  rmdir(D.c_str());
  return Ok;
}

} // namespace

bool sigc::hostCCompilerAvailable() { return !hostCC().empty(); }

OracleReport sigc::checkDifferential(const std::string &Name,
                                     const std::string &Source,
                                     const OracleOptions &Options) {
  OracleReport R;

  auto C = compileSource("<oracle:" + Name + ">", Source);
  if (!C->Ok) {
    R.Error = failure(Name, "compilation failed during " + C->FailedStage,
                      C->Diags.render(), Source);
    return R;
  }

  // Path 1: reference fixpoint interpreter.
  RandomEnvironment EnvRef(Options.EnvSeed, Options.TickPermille);
  KernelInterp Ref(*C->Kernel, C->Clocks, *C->Forest, C->names());
  if (!Ref.run(EnvRef, Options.Instants)) {
    R.Error = failure(Name, "reference interpreter got stuck", "", Source);
    return R;
  }

  // Path 2: flat step program.
  RandomEnvironment EnvFlat(Options.EnvSeed, Options.TickPermille);
  StepExecutor ExecFlat(*C->Kernel, C->Step);
  ExecFlat.run(EnvFlat, Options.Instants, ExecMode::Flat);
  R.GuardTestsFlat = ExecFlat.guardTests();

  // Path 3: nested step program.
  RandomEnvironment EnvNested(Options.EnvSeed, Options.TickPermille);
  StepExecutor ExecNested(*C->Kernel, C->Step);
  ExecNested.run(EnvNested, Options.Instants, ExecMode::Nested);
  R.GuardTestsNested = ExecNested.guardTests();

  TraceDiff D = compareTraces("interp", EnvRef.outputs(), "step-flat",
                              EnvFlat.outputs());
  if (!D.Equal) {
    R.Error = failure(Name, "interpreter vs flat step divergence", D.Report,
                      Source);
    return R;
  }
  D = compareTraces("step-flat", EnvFlat.outputs(), "step-nested",
                    EnvNested.outputs());
  if (!D.Equal) {
    R.Error =
        failure(Name, "flat vs nested step divergence", D.Report, Source);
    return R;
  }

  // Path 4: the emitted C, through the host compiler.
  if (Options.EmitCRoundTrip && hostCCompilerAvailable()) {
    const StringInterner &Names = C->names();
    std::string ProcName(Names.spelling(C->Decl->Name));
    std::vector<OutputEvent> CEvents;
    std::string Error;
    if (!runCRoundTrip(*C, ProcName, Options, CEvents, Error)) {
      R.Error = failure(Name, "emitted-C round-trip failed", Error, Source);
      return R;
    }
    R.CRoundTripRan = true;
    D = compareTraces("step-nested", EnvNested.outputs(), "emitted-c",
                      CEvents);
    if (!D.Equal) {
      R.Error = failure(Name, "in-process vs emitted-C divergence", D.Report,
                        Source);
      return R;
    }
  }

  R.Ok = true;
  return R;
}

OracleReport sigc::checkRandomDifferential(
    uint64_t Seed, const RandomProgramOptions &GenOptions,
    const OracleOptions &Options) {
  std::string Name = "random-" + std::to_string(Seed);
  std::string Source = generateRandomProgram("RAND", Seed, GenOptions);
  return checkDifferential(Name, Source, Options);
}
