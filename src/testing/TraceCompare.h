//===--- TraceCompare.h - Output-trace comparison ---------------*- C++-*-===//
///
/// \file
/// Canonicalization and comparison of output traces for differential
/// testing. The three execution paths (fixpoint interpreter, flat step,
/// nested step) and the emitted-C harness may write the outputs of one
/// instant in different orders; a canonical trace sorts events of the
/// same instant by signal name so comparisons see only semantic
/// divergence.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_TESTING_TRACECOMPARE_H
#define SIGNALC_TESTING_TRACECOMPARE_H

#include "interp/Environment.h"

#include <string>
#include <vector>

namespace sigc {

/// \returns \p Events sorted by (instant, signal name), stably.
std::vector<OutputEvent> canonicalTrace(std::vector<OutputEvent> Events);

/// Result of comparing two traces.
struct TraceDiff {
  bool Equal = true;
  /// Human-readable report of the first divergence (empty when equal):
  /// the mismatching event from each side plus a little shared context.
  std::string Report;
};

/// Compares two traces after canonicalization. \p NameA / \p NameB label
/// the two execution paths in the report ("interp", "step-nested", ...).
TraceDiff compareTraces(const std::string &NameA, std::vector<OutputEvent> A,
                        const std::string &NameB, std::vector<OutputEvent> B);

} // namespace sigc

#endif // SIGNALC_TESTING_TRACECOMPARE_H
