//===--- RandomProgram.cpp ------------------------------------------------===//

#include "testing/RandomProgram.h"

#include <cassert>
#include <random>
#include <vector>

using namespace sigc;

namespace {

/// The generator's view of one signal.
struct GenSignal {
  std::string Name;
  bool IsBool = false;
  int Class = -1;       ///< Abstract clock class.
  bool Defined = false; ///< Has a defining equation (inputs do not).
  bool IsChannel = false; ///< Imported from an upstream process.
};

/// A channel handed to a downstream generator: the exporter's signal plus
/// the exporter-side clock class, so the consumer knows which channels it
/// may legally declare synchronous.
struct ChannelIn {
  std::string Name;
  bool IsBool = false;
  int ProducerClass = -1;
};

/// Everything one generator run produced, for flexible rendering.
struct GenResult {
  std::vector<GenSignal> Signals;
  std::vector<int> Outputs; ///< Indices into Signals.
  std::vector<std::string> Eqs;
};

/// Moduli applied to integer Func results to keep values bounded.
constexpr int64_t Moduli[] = {97, 101, 251, 1009, 9973};

class Generator {
public:
  /// \p Prefix is prepended to every generated signal name, so multiple
  /// processes of one system never collide. \p Channels become extra
  /// undefined signals, each in its own *derived* class: the generator
  /// then never merges an import's clock with a free input's — the
  /// producer paces imports, not the environment.
  Generator(uint64_t Seed, const RandomProgramOptions &Options,
            std::string Prefix = "",
            const std::vector<ChannelIn> &Channels = {},
            unsigned SynchroChannelPercent = 0)
      : Options(Options), Prefix(std::move(Prefix)), Rng(Seed) {
    // Enforce the documented minimums: "when" conditions need a boolean
    // signal, and a process without outputs is unobservable.
    if (this->Options.BoolInputs == 0)
      this->Options.BoolInputs = 1;
    if (this->Options.MaxOutputs == 0)
      this->Options.MaxOutputs = 1;
    if (this->Options.Equations == 0)
      this->Options.Equations = 1;

    for (const ChannelIn &Ch : Channels) {
      int S = addSignal(Ch.Name, Ch.IsBool, newClass(/*Derived=*/true),
                        /*Defined=*/false);
      Signals[S].IsChannel = true;
    }
    // Consumer-side synchro between channels the producer keeps
    // synchronous: a provable interface obligation.
    for (size_t I = 0; I < Channels.size(); ++I)
      for (size_t J = I + 1; J < Channels.size(); ++J) {
        if (Channels[I].ProducerClass != Channels[J].ProducerClass ||
            Signals[I].Class == Signals[J].Class)
          continue;
        if (!percent(SynchroChannelPercent))
          continue;
        eq("synchro {" + Channels[I].Name + ", " + Channels[J].Name + "}");
        int To = Signals[I].Class, From = Signals[J].Class;
        for (GenSignal &S : Signals)
          if (S.Class == From)
            S.Class = To;
      }
  }

  GenResult run();

private:
  unsigned pick(unsigned Bound) {
    return Bound == 0 ? 0 : static_cast<unsigned>(Rng() % Bound);
  }
  bool percent(unsigned P) { return pick(100) < P; }

  int newClass(bool Derived) {
    ClassDerived.push_back(Derived);
    return static_cast<int>(ClassDerived.size()) - 1;
  }

  /// Merges clock class \p From into \p To (both must be free).
  void mergeClasses(int To, int From) {
    if (To == From)
      return;
    assert(!ClassDerived[To] && !ClassDerived[From]);
    for (GenSignal &S : Signals)
      if (S.Class == From)
        S.Class = To;
  }

  int addSignal(const std::string &Name, bool IsBool, int Class,
                bool Defined) {
    Signals.push_back({Name, IsBool, Class, Defined, false});
    return static_cast<int>(Signals.size()) - 1;
  }

  /// Indices of signals usable as operands with pivot class \p Class:
  /// same class always; other free classes too when \p Class is free
  /// (uses merge the classes, like the calculus' unification).
  std::vector<int> operandPool(int Class, bool WantBool) const {
    std::vector<int> Pool;
    bool PivotFree = !ClassDerived[Class];
    for (int I = 0; I < static_cast<int>(Signals.size()); ++I) {
      const GenSignal &S = Signals[I];
      if (S.IsBool != WantBool)
        continue;
      if (S.Class == Class || (PivotFree && !ClassDerived[S.Class]))
        Pool.push_back(I);
    }
    return Pool;
  }

  /// Picks a random signal index, optionally filtered by type.
  int pickSignal(int WantBool /* -1 = any */) {
    std::vector<int> Pool;
    for (int I = 0; I < static_cast<int>(Signals.size()); ++I)
      if (WantBool < 0 || Signals[I].IsBool == (WantBool == 1))
        Pool.push_back(I);
    return Pool[pick(static_cast<unsigned>(Pool.size()))];
  }

  /// Emits an expression over \p Class-compatible operands; signals that
  /// get used are recorded in \p Used so the caller can merge classes.
  std::string genExpr(int Class, bool WantBool, unsigned Depth,
                      std::vector<int> &Used);

  std::string genIntLeaf(int Class, std::vector<int> &Used);
  std::string genBoolLeaf(int Class, std::vector<int> &Used);

  void genFunc(unsigned Index);
  void genDelay(unsigned Index);
  void genWhen(unsigned Index);
  void genDefault(unsigned Index);
  void genAccumulator(unsigned Index);
  void maybeGenSynchro();

  void eq(const std::string &Text) { Eqs.push_back(Text); }

  RandomProgramOptions Options;
  std::string Prefix;
  std::mt19937_64 Rng;

  std::vector<GenSignal> Signals;
  std::vector<bool> ClassDerived; ///< Indexed by class id.
  std::vector<std::string> Eqs;
};

std::string Generator::genIntLeaf(int Class, std::vector<int> &Used) {
  std::vector<int> Pool = operandPool(Class, /*WantBool=*/false);
  if (Pool.empty() || percent(20))
    return std::to_string(pick(10));
  int S = Pool[pick(static_cast<unsigned>(Pool.size()))];
  Used.push_back(S);
  return Signals[S].Name;
}

std::string Generator::genBoolLeaf(int Class, std::vector<int> &Used) {
  std::vector<int> Pool = operandPool(Class, /*WantBool=*/true);
  if (Pool.empty() || percent(15))
    return pick(2) ? "true" : "false";
  int S = Pool[pick(static_cast<unsigned>(Pool.size()))];
  Used.push_back(S);
  return Signals[S].Name;
}

std::string Generator::genExpr(int Class, bool WantBool, unsigned Depth,
                               std::vector<int> &Used) {
  if (Depth == 0)
    return WantBool ? genBoolLeaf(Class, Used) : genIntLeaf(Class, Used);

  if (!WantBool) {
    switch (pick(6)) {
    case 0:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " + " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 1:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " - " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 2:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " * " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 3:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " / " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 4:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " mod " +
             std::to_string(2 + pick(9)) + ")";
    default:
      return genIntLeaf(Class, Used);
    }
  }

  switch (pick(8)) {
  case 0:
    return "(" + genExpr(Class, true, Depth - 1, Used) + " and " +
           genExpr(Class, true, Depth - 1, Used) + ")";
  case 1:
    return "(" + genExpr(Class, true, Depth - 1, Used) + " or " +
           genExpr(Class, true, Depth - 1, Used) + ")";
  case 2:
    return "(" + genExpr(Class, true, Depth - 1, Used) + " xor " +
           genExpr(Class, true, Depth - 1, Used) + ")";
  case 3:
    return "(not " + genExpr(Class, true, Depth - 1, Used) + ")";
  case 4:
    return "(" + genExpr(Class, false, Depth - 1, Used) + " < " +
           genExpr(Class, false, Depth - 1, Used) + ")";
  case 5:
    return "(" + genExpr(Class, false, Depth - 1, Used) + " >= " +
           genExpr(Class, false, Depth - 1, Used) + ")";
  case 6:
    return "(" + genExpr(Class, false, Depth - 1, Used) + " = " +
           genExpr(Class, false, Depth - 1, Used) + ")";
  default:
    return genBoolLeaf(Class, Used);
  }
}

/// Merges the classes of all \p Used signals into \p Class. Only called
/// when the pool discipline already guaranteed compatibility.
static int unifyUsed(std::vector<GenSignal> &Signals,
                     std::vector<bool> &ClassDerived, int Class,
                     const std::vector<int> &Used) {
  for (int S : Used) {
    int C = Signals[S].Class;
    if (C == Class)
      continue;
    assert(!ClassDerived[Class] && !ClassDerived[C]);
    (void)ClassDerived;
    for (GenSignal &Sig : Signals)
      if (Sig.Class == C)
        Sig.Class = Class;
  }
  return Class;
}

void Generator::genFunc(unsigned Index) {
  bool WantBool = percent(40);
  int Pivot = pickSignal(-1);
  int Class = Signals[Pivot].Class;

  std::vector<int> Used;
  std::string Expr =
      genExpr(Class, WantBool, 1 + pick(Options.MaxExprDepth), Used);
  std::string Name =
      Prefix + (WantBool ? "SB" : "SI") + std::to_string(Index);
  if (!WantBool) {
    int64_t M = Moduli[pick(sizeof(Moduli) / sizeof(Moduli[0]))];
    Expr = "(" + Expr + ") mod " + std::to_string(M);
  }
  // The compiled constraint is ŷ = x̂ for the *used* operands only: a
  // constants-only body leaves ŷ a fresh free root, and an unused pivot
  // contributes nothing. Claiming otherwise would let the pair generator
  // demand synchrony the producer cannot prove.
  if (Used.empty())
    Class = newClass(/*Derived=*/false);
  else
    Class = unifyUsed(Signals, ClassDerived, Signals[Used[0]].Class, Used);
  addSignal(Name, WantBool, Class, /*Defined=*/true);
  eq(Name + " := " + Expr);
}

void Generator::genDelay(unsigned Index) {
  int Src = pickSignal(-1);
  // Copy: addSignal reallocates Signals.
  GenSignal S = Signals[Src];
  std::string Name = Prefix + (S.IsBool ? "DB" : "DI") + std::to_string(Index);
  std::string Init =
      S.IsBool ? (pick(2) ? "true" : "false") : std::to_string(pick(10));
  addSignal(Name, S.IsBool, S.Class, /*Defined=*/true);
  eq(Name + " := " + S.Name + " $ 1 init " + Init);
}

void Generator::genWhen(unsigned Index) {
  int Val = pickSignal(-1);
  int Cond = pickSignal(/*WantBool=*/1);
  // Copy: addSignal reallocates Signals.
  GenSignal V = Signals[Val];
  std::string Name = Prefix + (V.IsBool ? "WB" : "WI") + std::to_string(Index);
  std::string CondText = percent(25) ? "(not " + Signals[Cond].Name + ")"
                                     : Signals[Cond].Name;
  addSignal(Name, V.IsBool, newClass(/*Derived=*/true), /*Defined=*/true);
  eq(Name + " := " + V.Name + " when " + CondText);
}

void Generator::genDefault(unsigned Index) {
  int A = pickSignal(-1);
  int B = pickSignal(Signals[A].IsBool ? 1 : 0);
  // Copies: addSignal reallocates Signals.
  GenSignal SA = Signals[A], SB = Signals[B];
  std::string Name = Prefix + (SA.IsBool ? "MB" : "MI") + std::to_string(Index);
  addSignal(Name, SA.IsBool, newClass(/*Derived=*/true), /*Defined=*/true);
  eq(Name + " := " + SA.Name + " default " + SB.Name);
}

void Generator::genAccumulator(unsigned Index) {
  // Z := N $ 1 init 0 | N := (expr + Z) mod M, everything in one class.
  int Pivot = pickSignal(-1);
  int Class = Signals[Pivot].Class;
  std::string Z = Prefix + "Z" + std::to_string(Index);
  std::string N = Prefix + "AC" + std::to_string(Index);

  std::vector<int> Used;
  std::string Expr = genExpr(Class, /*WantBool=*/false, 1, Used);
  // As in genFunc: only the used operands constrain the clock; a
  // constants-only body ties Z and N just to each other.
  if (Used.empty())
    Class = newClass(/*Derived=*/false);
  else
    Class = unifyUsed(Signals, ClassDerived, Signals[Used[0]].Class, Used);

  int64_t M = Moduli[pick(sizeof(Moduli) / sizeof(Moduli[0]))];
  addSignal(Z, /*IsBool=*/false, Class, /*Defined=*/true);
  addSignal(N, /*IsBool=*/false, Class, /*Defined=*/true);
  eq(Z + " := " + N + " $ 1 init 0");
  eq(N + " := (" + Expr + " + " + Z + ") mod " + std::to_string(M));
}

void Generator::maybeGenSynchro() {
  // Collect one representative per free class.
  std::vector<int> Reps;
  std::vector<bool> Seen(ClassDerived.size(), false);
  for (int I = 0; I < static_cast<int>(Signals.size()); ++I) {
    int C = Signals[I].Class;
    if (!ClassDerived[C] && !Seen[C]) {
      Seen[C] = true;
      Reps.push_back(I);
    }
  }
  if (Reps.size() < 2)
    return;
  unsigned A = pick(static_cast<unsigned>(Reps.size()));
  unsigned B = pick(static_cast<unsigned>(Reps.size()));
  if (A == B)
    return;
  int SA = Reps[A], SB = Reps[B];
  eq("synchro {" + Signals[SA].Name + ", " + Signals[SB].Name + "}");
  mergeClasses(Signals[SA].Class, Signals[SB].Class);
}

GenResult Generator::run() {
  for (unsigned I = 1; I <= Options.IntInputs; ++I)
    addSignal(Prefix + "I" + std::to_string(I), /*IsBool=*/false,
              newClass(/*Derived=*/false), /*Defined=*/false);
  for (unsigned I = 1; I <= Options.BoolInputs; ++I)
    addSignal(Prefix + "B" + std::to_string(I), /*IsBool=*/true,
              newClass(/*Derived=*/false), /*Defined=*/false);
  assert(Options.BoolInputs >= 1 && "when conditions need a boolean");

  for (unsigned I = 1; I <= Options.Equations; ++I) {
    if (percent(Options.SynchroPercent))
      maybeGenSynchro();
    if (percent(Options.AccumulatorPercent)) {
      genAccumulator(I);
      continue;
    }
    switch (pick(4)) {
    case 0:
      genFunc(I);
      break;
    case 1:
      genDelay(I);
      break;
    case 2:
      genWhen(I);
      break;
    default:
      genDefault(I);
      break;
    }
  }

  GenResult R;
  // Pick the outputs: the most recently defined signals, newest first,
  // so the deepest parts of the DAG are observed.
  unsigned NumOutputs = 1 + pick(Options.MaxOutputs);
  for (int I = static_cast<int>(Signals.size()) - 1;
       I >= 0 && R.Outputs.size() < NumOutputs; --I)
    if (Signals[I].Defined)
      R.Outputs.push_back(I);
  R.Signals = std::move(Signals);
  R.Eqs = std::move(Eqs);
  return R;
}

bool isOutput(const GenResult &R, int I) {
  for (int O : R.Outputs)
    if (O == I)
      return true;
  return false;
}

std::string declLine(const GenSignal &S) {
  return std::string("    ") + (S.IsBool ? "boolean " : "integer ") + S.Name +
         ";\n";
}

/// Renders a complete process declaration in the house style.
std::string renderProcess(const std::string &ProcName,
                          const std::string &Inputs,
                          const std::string &Outputs,
                          const std::string &Locals,
                          const std::vector<std::string> &Eqs) {
  std::string Out = "process " + ProcName + " =\n  ( ?\n" + Inputs +
                    "  !\n" + Outputs + "  )\n  (|\n";
  for (size_t I = 0; I < Eqs.size(); ++I)
    Out += (I == 0 ? "   " : "   | ") + Eqs[I] + "\n";
  Out += "  |)\n";
  if (!Locals.empty())
    Out += "  where\n" + Locals + "  end";
  Out += ";\n";
  return Out;
}

/// Renders one generator result as a standalone process: undefined
/// signals (free inputs and channels alike) become inputs, the chosen
/// outputs become outputs, every other defined signal a local.
std::string renderStandalone(const std::string &ProcName,
                             const GenResult &R) {
  std::string Inputs, Outputs, Locals;
  for (const GenSignal &S : R.Signals)
    if (!S.Defined)
      Inputs += declLine(S);
  for (int I : R.Outputs)
    Outputs += declLine(R.Signals[I]);
  for (int I = 0; I < static_cast<int>(R.Signals.size()); ++I)
    if (R.Signals[I].Defined && !isOutput(R, I))
      Locals += declLine(R.Signals[I]);
  return renderProcess(ProcName, Inputs, Outputs, Locals, R.Eqs);
}

/// The whole chain builder: N stages, stage k importing a subset of stage
/// k-1's outputs. Also renders the monolithic composition.
GeneratedChain buildChain(uint64_t Seed,
                          const std::vector<RandomProgramOptions> &Stages,
                          const std::vector<std::string> &Names,
                          const std::vector<std::string> &Prefixes,
                          const std::string &SystemName,
                          unsigned MaxChannels,
                          unsigned SynchroChannelPercent) {
  std::mt19937_64 Master(Seed * 0x9E3779B97F4A7C15ull + 1);
  GeneratedChain Chain;
  Chain.Names = Names;
  Chain.SystemName = SystemName;

  std::vector<GenResult> Results;
  std::vector<std::vector<int>> Consumed; // Per stage: consumed outputs.
  for (size_t K = 0; K < Stages.size(); ++K) {
    std::vector<ChannelIn> Channels;
    if (K > 0) {
      // Wire up to MaxChannels of the previous stage's outputs.
      const GenResult &Prev = Results[K - 1];
      unsigned Want = 1 + static_cast<unsigned>(
                              Master() % (MaxChannels ? MaxChannels : 1));
      for (int O : Prev.Outputs) {
        if (Channels.size() >= Want)
          break;
        const GenSignal &S = Prev.Signals[O];
        Channels.push_back({S.Name, S.IsBool, S.Class});
        Consumed[K - 1].push_back(O);
        Chain.Channels.push_back(S.Name);
      }
    }
    Generator G(Master(), Stages[K], Prefixes[K], Channels,
                SynchroChannelPercent);
    Results.push_back(G.run());
    Consumed.emplace_back();
  }

  for (size_t K = 0; K < Stages.size(); ++K)
    Chain.Sources.push_back(renderStandalone(Names[K], Results[K]));

  // Monolithic composition: all bodies in one process; consumed channel
  // signals become locals, everything externally visible stays an output.
  std::string Inputs, Outputs, Locals;
  std::vector<std::string> Eqs;
  for (size_t K = 0; K < Stages.size(); ++K) {
    const GenResult &R = Results[K];
    for (const GenSignal &S : R.Signals)
      if (!S.Defined && !S.IsChannel)
        Inputs += declLine(S);
    for (int I : R.Outputs) {
      bool IsConsumed = false;
      for (int C : Consumed[K])
        IsConsumed |= C == I;
      (IsConsumed ? Locals : Outputs) += declLine(R.Signals[I]);
    }
    for (int I = 0; I < static_cast<int>(R.Signals.size()); ++I)
      if (R.Signals[I].Defined && !isOutput(R, I))
        Locals += declLine(R.Signals[I]);
    for (const std::string &E : R.Eqs)
      Eqs.push_back(E);
  }
  Chain.ComposedSource =
      renderProcess(SystemName, Inputs, Outputs, Locals, Eqs);
  return Chain;
}

} // namespace

std::string sigc::generateRandomProgram(const std::string &Name,
                                        uint64_t Seed,
                                        const RandomProgramOptions &Options) {
  Generator G(Seed, Options);
  return renderStandalone(Name, G.run());
}

GeneratedPair sigc::generateProcessPair(uint64_t Seed,
                                        const ProcessPairOptions &Options) {
  GeneratedChain Chain = buildChain(
      Seed, {Options.Producer, Options.Consumer}, {"PROD", "CONS"},
      {"P_", "C_"}, "SYS", Options.MaxChannels,
      Options.SynchroChannelPercent);
  GeneratedPair P;
  P.ProducerName = Chain.Names[0];
  P.ConsumerName = Chain.Names[1];
  P.SystemName = Chain.SystemName;
  P.ProducerSource = Chain.Sources[0];
  P.ConsumerSource = Chain.Sources[1];
  P.ComposedSource = Chain.ComposedSource;
  P.Channels = Chain.Channels;
  return P;
}

GeneratedChain sigc::generateProcessChain(
    uint64_t Seed, unsigned Stages, const RandomProgramOptions &StageOptions,
    unsigned MaxChannels, unsigned SynchroChannelPercent) {
  if (Stages == 0)
    Stages = 1;
  std::vector<RandomProgramOptions> PerStage(Stages, StageOptions);
  std::vector<std::string> Names, Prefixes;
  for (unsigned K = 0; K < Stages; ++K) {
    Names.push_back("STAGE" + std::to_string(K));
    Prefixes.push_back("S" + std::to_string(K) + "_");
  }
  return buildChain(Seed, PerStage, Names, Prefixes, "SYS", MaxChannels,
                    SynchroChannelPercent);
}

GeneratedPair sigc::generateFeedbackPair(uint64_t Seed) {
  std::mt19937_64 Master(Seed * 0x9E3779B97F4A7C15ull + 1);
  auto Coef = [&] { return std::to_string(1 + Master() % 9); };
  std::string M =
      std::to_string(Moduli[Master() % (sizeof(Moduli) / sizeof(Moduli[0]))]);
  // The three equations of the loop. FC reads FB *in FB's own class*:
  // combining it with FA's class would unify the import's clock with
  // LOOPA's root and close a true instruction-level cycle — this is the
  // shape discipline the fused linker accepts.
  std::string EqA = "FA := (FX + " + Coef() + ") mod " + M;
  std::string EqB = "FB := (FA * " + Coef() + " + " + Coef() + ") mod " + M;
  std::string EqC = "FC := (FB * " + Coef() + " + " + Coef() + ") mod " + M;

  GeneratedPair P;
  P.ProducerName = "LOOPA";
  P.ConsumerName = "LOOPB";
  P.SystemName = "FBSYS";
  P.Channels = {"FA", "FB"};
  P.ProducerSource = renderProcess(
      "LOOPA", "    integer FX;\n    integer FB;\n",
      "    integer FA;\n    integer FC;\n", "", {EqA, EqC});
  P.ConsumerSource = renderProcess("LOOPB", "    integer FA;\n",
                                   "    integer FB;\n", "", {EqB});
  P.ComposedSource = renderProcess(
      "FBSYS", "    integer FX;\n", "    integer FC;\n",
      "    integer FA;\n    integer FB;\n", {EqA, EqB, EqC});
  return P;
}

GeneratedChain sigc::generateDiamondSystem(uint64_t Seed) {
  std::mt19937_64 Master(Seed * 0x9E3779B97F4A7C15ull + 1);
  auto Coef = [&] { return std::to_string(1 + Master() % 9); };
  std::string M =
      std::to_string(Moduli[Master() % (sizeof(Moduli) / sizeof(Moduli[0]))]);
  // A true diamond: DIAS fans DX out to DIAA and DIAB over channels, so
  // both middle producers' roots resolve to DIAS's presence of DX, and
  // the consumer's synchro {DA, DB} — an obligation no single
  // producer's forest can see — is one implication in the joint space.
  std::string EqX = "DX := (SRC + " + Coef() + ") mod " + M;
  std::string EqA = "DA := (DX * " + Coef() + " + " + Coef() + ") mod " + M;
  std::string EqB = "DB := (DX + " + Coef() + ") mod " + M;
  std::string EqY = "DY := (DA + DB * " + Coef() + ") mod " + M;

  GeneratedChain D;
  D.Names = {"DIAS", "DIAA", "DIAB", "DIAK"};
  D.SystemName = "DIASYS";
  D.Channels = {"DX", "DA", "DB"};
  D.Sources.push_back(renderProcess("DIAS", "    integer SRC;\n",
                                    "    integer DX;\n", "", {EqX}));
  D.Sources.push_back(renderProcess("DIAA", "    integer DX;\n",
                                    "    integer DA;\n", "", {EqA}));
  D.Sources.push_back(renderProcess("DIAB", "    integer DX;\n",
                                    "    integer DB;\n", "", {EqB}));
  D.Sources.push_back(
      renderProcess("DIAK", "    integer DA;\n    integer DB;\n",
                    "    integer DY;\n", "", {"synchro {DA, DB}", EqY}));
  D.ComposedSource = renderProcess(
      "DIASYS", "    integer SRC;\n", "    integer DY;\n",
      "    integer DX;\n    integer DA;\n    integer DB;\n",
      {EqX, EqA, EqB, "synchro {DA, DB}", EqY});
  return D;
}
