//===--- RandomProgram.cpp ------------------------------------------------===//

#include "testing/RandomProgram.h"

#include <cassert>
#include <random>
#include <vector>

using namespace sigc;

namespace {

/// The generator's view of one signal.
struct GenSignal {
  std::string Name;
  bool IsBool = false;
  int Class = -1;     ///< Abstract clock class.
  bool Defined = false; ///< Has a defining equation (inputs do not).
};

/// Moduli applied to integer Func results to keep values bounded.
constexpr int64_t Moduli[] = {97, 101, 251, 1009, 9973};

class Generator {
public:
  Generator(std::string Name, uint64_t Seed,
            const RandomProgramOptions &Options)
      : ProcName(std::move(Name)), Options(Options), Rng(Seed) {
    // Enforce the documented minimums: "when" conditions need a boolean
    // signal, and a process without outputs is unobservable.
    if (this->Options.BoolInputs == 0)
      this->Options.BoolInputs = 1;
    if (this->Options.MaxOutputs == 0)
      this->Options.MaxOutputs = 1;
  }

  std::string run();

private:
  unsigned pick(unsigned Bound) {
    return Bound == 0 ? 0 : static_cast<unsigned>(Rng() % Bound);
  }
  bool percent(unsigned P) { return pick(100) < P; }

  int newClass(bool Derived) {
    ClassDerived.push_back(Derived);
    return static_cast<int>(ClassDerived.size()) - 1;
  }

  /// Merges clock class \p From into \p To (both must be free).
  void mergeClasses(int To, int From) {
    if (To == From)
      return;
    assert(!ClassDerived[To] && !ClassDerived[From]);
    for (GenSignal &S : Signals)
      if (S.Class == From)
        S.Class = To;
  }

  int addSignal(const std::string &Name, bool IsBool, int Class,
                bool Defined) {
    Signals.push_back({Name, IsBool, Class, Defined});
    return static_cast<int>(Signals.size()) - 1;
  }

  /// Indices of signals usable as operands with pivot class \p Class:
  /// same class always; other free classes too when \p Class is free
  /// (uses merge the classes, like the calculus' unification).
  std::vector<int> operandPool(int Class, bool WantBool) const {
    std::vector<int> Pool;
    bool PivotFree = !ClassDerived[Class];
    for (int I = 0; I < static_cast<int>(Signals.size()); ++I) {
      const GenSignal &S = Signals[I];
      if (S.IsBool != WantBool)
        continue;
      if (S.Class == Class || (PivotFree && !ClassDerived[S.Class]))
        Pool.push_back(I);
    }
    return Pool;
  }

  /// Picks a random signal index, optionally filtered by type.
  int pickSignal(int WantBool /* -1 = any */) {
    std::vector<int> Pool;
    for (int I = 0; I < static_cast<int>(Signals.size()); ++I)
      if (WantBool < 0 || Signals[I].IsBool == (WantBool == 1))
        Pool.push_back(I);
    return Pool[pick(static_cast<unsigned>(Pool.size()))];
  }

  /// Emits an expression over \p Class-compatible operands; signals that
  /// get used are recorded in \p Used so the caller can merge classes.
  std::string genExpr(int Class, bool WantBool, unsigned Depth,
                      std::vector<int> &Used);

  std::string genIntLeaf(int Class, std::vector<int> &Used);
  std::string genBoolLeaf(int Class, std::vector<int> &Used);

  void genFunc(unsigned Index);
  void genDelay(unsigned Index);
  void genWhen(unsigned Index);
  void genDefault(unsigned Index);
  void genAccumulator(unsigned Index);
  void maybeGenSynchro();

  void eq(const std::string &Text) {
    Body += Body.empty() ? "   " : "   | ";
    Body += Text + "\n";
  }

  std::string ProcName;
  RandomProgramOptions Options;
  std::mt19937_64 Rng;

  std::vector<GenSignal> Signals;
  std::vector<bool> ClassDerived; ///< Indexed by class id.
  std::string Body;
};

std::string Generator::genIntLeaf(int Class, std::vector<int> &Used) {
  std::vector<int> Pool = operandPool(Class, /*WantBool=*/false);
  if (Pool.empty() || percent(20))
    return std::to_string(pick(10));
  int S = Pool[pick(static_cast<unsigned>(Pool.size()))];
  Used.push_back(S);
  return Signals[S].Name;
}

std::string Generator::genBoolLeaf(int Class, std::vector<int> &Used) {
  std::vector<int> Pool = operandPool(Class, /*WantBool=*/true);
  if (Pool.empty() || percent(15))
    return pick(2) ? "true" : "false";
  int S = Pool[pick(static_cast<unsigned>(Pool.size()))];
  Used.push_back(S);
  return Signals[S].Name;
}

std::string Generator::genExpr(int Class, bool WantBool, unsigned Depth,
                               std::vector<int> &Used) {
  if (Depth == 0)
    return WantBool ? genBoolLeaf(Class, Used) : genIntLeaf(Class, Used);

  if (!WantBool) {
    switch (pick(6)) {
    case 0:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " + " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 1:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " - " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 2:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " * " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 3:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " / " +
             genExpr(Class, false, Depth - 1, Used) + ")";
    case 4:
      return "(" + genExpr(Class, false, Depth - 1, Used) + " mod " +
             std::to_string(2 + pick(9)) + ")";
    default:
      return genIntLeaf(Class, Used);
    }
  }

  switch (pick(8)) {
  case 0:
    return "(" + genExpr(Class, true, Depth - 1, Used) + " and " +
           genExpr(Class, true, Depth - 1, Used) + ")";
  case 1:
    return "(" + genExpr(Class, true, Depth - 1, Used) + " or " +
           genExpr(Class, true, Depth - 1, Used) + ")";
  case 2:
    return "(" + genExpr(Class, true, Depth - 1, Used) + " xor " +
           genExpr(Class, true, Depth - 1, Used) + ")";
  case 3:
    return "(not " + genExpr(Class, true, Depth - 1, Used) + ")";
  case 4:
    return "(" + genExpr(Class, false, Depth - 1, Used) + " < " +
           genExpr(Class, false, Depth - 1, Used) + ")";
  case 5:
    return "(" + genExpr(Class, false, Depth - 1, Used) + " >= " +
           genExpr(Class, false, Depth - 1, Used) + ")";
  case 6:
    return "(" + genExpr(Class, false, Depth - 1, Used) + " = " +
           genExpr(Class, false, Depth - 1, Used) + ")";
  default:
    return genBoolLeaf(Class, Used);
  }
}

/// Merges the classes of all \p Used signals into \p Class. Only called
/// when the pool discipline already guaranteed compatibility.
static int unifyUsed(std::vector<GenSignal> &Signals,
                     std::vector<bool> &ClassDerived, int Class,
                     const std::vector<int> &Used) {
  for (int S : Used) {
    int C = Signals[S].Class;
    if (C == Class)
      continue;
    assert(!ClassDerived[Class] && !ClassDerived[C]);
    (void)ClassDerived;
    for (GenSignal &Sig : Signals)
      if (Sig.Class == C)
        Sig.Class = Class;
  }
  return Class;
}

void Generator::genFunc(unsigned Index) {
  bool WantBool = percent(40);
  int Pivot = pickSignal(-1);
  int Class = Signals[Pivot].Class;

  std::vector<int> Used;
  std::string Expr =
      genExpr(Class, WantBool, 1 + pick(Options.MaxExprDepth), Used);
  std::string Name = (WantBool ? "SB" : "SI") + std::to_string(Index);
  if (!WantBool) {
    int64_t M = Moduli[pick(sizeof(Moduli) / sizeof(Moduli[0]))];
    Expr = "(" + Expr + ") mod " + std::to_string(M);
  }
  Class = unifyUsed(Signals, ClassDerived, Class, Used);
  addSignal(Name, WantBool, Class, /*Defined=*/true);
  eq(Name + " := " + Expr);
}

void Generator::genDelay(unsigned Index) {
  int Src = pickSignal(-1);
  // Copy: addSignal reallocates Signals.
  GenSignal S = Signals[Src];
  std::string Name = (S.IsBool ? "DB" : "DI") + std::to_string(Index);
  std::string Init =
      S.IsBool ? (pick(2) ? "true" : "false") : std::to_string(pick(10));
  addSignal(Name, S.IsBool, S.Class, /*Defined=*/true);
  eq(Name + " := " + S.Name + " $ 1 init " + Init);
}

void Generator::genWhen(unsigned Index) {
  int Val = pickSignal(-1);
  int Cond = pickSignal(/*WantBool=*/1);
  // Copy: addSignal reallocates Signals.
  GenSignal V = Signals[Val];
  std::string Name = (V.IsBool ? "WB" : "WI") + std::to_string(Index);
  std::string CondText = percent(25) ? "(not " + Signals[Cond].Name + ")"
                                     : Signals[Cond].Name;
  addSignal(Name, V.IsBool, newClass(/*Derived=*/true), /*Defined=*/true);
  eq(Name + " := " + V.Name + " when " + CondText);
}

void Generator::genDefault(unsigned Index) {
  int A = pickSignal(-1);
  int B = pickSignal(Signals[A].IsBool ? 1 : 0);
  // Copies: addSignal reallocates Signals.
  GenSignal SA = Signals[A], SB = Signals[B];
  std::string Name = (SA.IsBool ? "MB" : "MI") + std::to_string(Index);
  addSignal(Name, SA.IsBool, newClass(/*Derived=*/true), /*Defined=*/true);
  eq(Name + " := " + SA.Name + " default " + SB.Name);
}

void Generator::genAccumulator(unsigned Index) {
  // Z := N $ 1 init 0 | N := (expr + Z) mod M, everything in one class.
  int Pivot = pickSignal(-1);
  int Class = Signals[Pivot].Class;
  std::string Z = "Z" + std::to_string(Index);
  std::string N = "AC" + std::to_string(Index);

  std::vector<int> Used;
  std::string Expr = genExpr(Class, /*WantBool=*/false, 1, Used);
  Class = unifyUsed(Signals, ClassDerived, Class, Used);

  int64_t M = Moduli[pick(sizeof(Moduli) / sizeof(Moduli[0]))];
  addSignal(Z, /*IsBool=*/false, Class, /*Defined=*/true);
  addSignal(N, /*IsBool=*/false, Class, /*Defined=*/true);
  eq(Z + " := " + N + " $ 1 init 0");
  eq(N + " := (" + Expr + " + " + Z + ") mod " + std::to_string(M));
}

void Generator::maybeGenSynchro() {
  // Collect one representative per free class.
  std::vector<int> Reps;
  std::vector<bool> Seen(ClassDerived.size(), false);
  for (int I = 0; I < static_cast<int>(Signals.size()); ++I) {
    int C = Signals[I].Class;
    if (!ClassDerived[C] && !Seen[C]) {
      Seen[C] = true;
      Reps.push_back(I);
    }
  }
  if (Reps.size() < 2)
    return;
  unsigned A = pick(static_cast<unsigned>(Reps.size()));
  unsigned B = pick(static_cast<unsigned>(Reps.size()));
  if (A == B)
    return;
  int SA = Reps[A], SB = Reps[B];
  eq("synchro {" + Signals[SA].Name + ", " + Signals[SB].Name + "}");
  mergeClasses(Signals[SA].Class, Signals[SB].Class);
}

std::string Generator::run() {
  for (unsigned I = 1; I <= Options.IntInputs; ++I)
    addSignal("I" + std::to_string(I), /*IsBool=*/false,
              newClass(/*Derived=*/false), /*Defined=*/false);
  for (unsigned I = 1; I <= Options.BoolInputs; ++I)
    addSignal("B" + std::to_string(I), /*IsBool=*/true,
              newClass(/*Derived=*/false), /*Defined=*/false);
  assert(Options.BoolInputs >= 1 && "when conditions need a boolean");

  for (unsigned I = 1; I <= Options.Equations; ++I) {
    if (percent(Options.SynchroPercent))
      maybeGenSynchro();
    if (percent(Options.AccumulatorPercent)) {
      genAccumulator(I);
      continue;
    }
    switch (pick(4)) {
    case 0:
      genFunc(I);
      break;
    case 1:
      genDelay(I);
      break;
    case 2:
      genWhen(I);
      break;
    default:
      genDefault(I);
      break;
    }
  }

  // Pick the outputs: the most recently defined signals, newest first,
  // so the deepest parts of the DAG are observed.
  unsigned NumOutputs = 1 + pick(Options.MaxOutputs);
  std::vector<int> Outputs;
  for (int I = static_cast<int>(Signals.size()) - 1;
       I >= 0 && Outputs.size() < NumOutputs; --I)
    if (Signals[I].Defined)
      Outputs.push_back(I);

  std::string Decl = "process " + ProcName + " =\n  ( ?\n";
  for (const GenSignal &S : Signals)
    if (!S.Defined)
      Decl += std::string("    ") + (S.IsBool ? "boolean " : "integer ") +
              S.Name + ";\n";
  Decl += "  !\n";
  for (int I : Outputs)
    Decl += std::string("    ") +
            (Signals[I].IsBool ? "boolean " : "integer ") + Signals[I].Name +
            ";\n";
  Decl += "  )\n  (|\n" + Body + "  |)\n";

  std::string Locals;
  for (int I = 0; I < static_cast<int>(Signals.size()); ++I) {
    const GenSignal &S = Signals[I];
    if (!S.Defined)
      continue;
    bool IsOutput = false;
    for (int O : Outputs)
      IsOutput |= O == I;
    if (IsOutput)
      continue;
    Locals += std::string("    ") + (S.IsBool ? "boolean " : "integer ") +
              S.Name + ";\n";
  }
  if (!Locals.empty())
    Decl += "  where\n" + Locals + "  end";
  Decl += ";\n";
  return Decl;
}

} // namespace

std::string sigc::generateRandomProgram(const std::string &Name,
                                        uint64_t Seed,
                                        const RandomProgramOptions &Options) {
  Generator G(Name, Seed, Options);
  return G.run();
}
