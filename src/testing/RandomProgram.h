//===--- RandomProgram.h - Random kernel-program generation -----*- C++-*-===//
///
/// \file
/// Generates random but *well-clocked* SIGNAL source programs for
/// differential testing. Programs are built as a DAG of equations over a
/// small signal pool; a clock-class discipline guarantees the clock
/// calculus accepts every generated program:
///
///   * every signal carries an abstract clock class,
///   * pointwise functions only combine signals of one class — or of
///     several *free* classes (input roots), which the generator merges,
///     mirroring the unification the calculus will perform,
///   * "when" and "default" results open a fresh derived class, since
///     their clocks are new nodes of the hierarchy,
///   * delays stay in the class of their source (ŷ = x̂).
///
/// Integer results are reduced "mod" a small constant so values stay
/// bounded under feedback (no signed overflow on any path, including the
/// emitted C). An accumulator motif (Z := N $ 1 | N := f(..., Z)) injects
/// stateful feedback, which is what distinguishes a schedule bug from a
/// pointwise bug.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_TESTING_RANDOMPROGRAM_H
#define SIGNALC_TESTING_RANDOMPROGRAM_H

#include <cstdint>
#include <string>

namespace sigc {

/// Knobs of the random generator.
struct RandomProgramOptions {
  unsigned IntInputs = 2;       ///< Integer input signals.
  unsigned BoolInputs = 2;      ///< Boolean input signals.
  unsigned Equations = 12;      ///< Derived-signal equations to generate.
  unsigned MaxExprDepth = 3;    ///< Operator-tree depth for Func equations.
  unsigned MaxOutputs = 4;      ///< Output signals exported (at least 1).
  unsigned SynchroPercent = 10; ///< Chance per equation slot to emit a
                                ///< synchro between two free classes.
  unsigned AccumulatorPercent = 20; ///< Chance a slot becomes the two-
                                    ///< equation delay-feedback motif.
};

/// Generates one process named \p Name from \p Seed. Same seed, same
/// options, same source — byte for byte.
std::string generateRandomProgram(const std::string &Name, uint64_t Seed,
                                  const RandomProgramOptions &Options = {});

} // namespace sigc

#endif // SIGNALC_TESTING_RANDOMPROGRAM_H
