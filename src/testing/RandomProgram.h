//===--- RandomProgram.h - Random kernel-program generation -----*- C++-*-===//
///
/// \file
/// Generates random but *well-clocked* SIGNAL source programs for
/// differential testing. Programs are built as a DAG of equations over a
/// small signal pool; a clock-class discipline guarantees the clock
/// calculus accepts every generated program:
///
///   * every signal carries an abstract clock class,
///   * pointwise functions only combine signals of one class — or of
///     several *free* classes (input roots), which the generator merges,
///     mirroring the unification the calculus will perform,
///   * "when" and "default" results open a fresh derived class, since
///     their clocks are new nodes of the hierarchy,
///   * delays stay in the class of their source (ŷ = x̂).
///
/// Integer results are reduced "mod" a small constant so values stay
/// bounded under feedback (no signed overflow on any path, including the
/// emitted C). An accumulator motif (Z := N $ 1 | N := f(..., Z)) injects
/// stateful feedback, which is what distinguishes a schedule bug from a
/// pointwise bug.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_TESTING_RANDOMPROGRAM_H
#define SIGNALC_TESTING_RANDOMPROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace sigc {

/// Knobs of the random generator.
struct RandomProgramOptions {
  unsigned IntInputs = 2;       ///< Integer input signals.
  unsigned BoolInputs = 2;      ///< Boolean input signals.
  unsigned Equations = 12;      ///< Derived-signal equations to generate.
  unsigned MaxExprDepth = 3;    ///< Operator-tree depth for Func equations.
  unsigned MaxOutputs = 4;      ///< Output signals exported (at least 1).
  unsigned SynchroPercent = 10; ///< Chance per equation slot to emit a
                                ///< synchro between two free classes.
  unsigned AccumulatorPercent = 20; ///< Chance a slot becomes the two-
                                    ///< equation delay-feedback motif.
};

/// Generates one process named \p Name from \p Seed. Same seed, same
/// options, same source — byte for byte.
std::string generateRandomProgram(const std::string &Name, uint64_t Seed,
                                  const RandomProgramOptions &Options = {});

//===----------------------------------------------------------------------===//
// Multi-process generation (separate-compilation testing)
//===----------------------------------------------------------------------===//
//
// A generated *pair* (or longer *chain*) is a producer whose outputs feed
// a consumer's imports, plus the textual composition of the two bodies
// into one monolithic process. The differential linker oracle compiles
// the pieces separately, links them, and demands the linked trace equal
// the monolithic compilation's trace.
//
// The consumer's discipline keeps every channel in its own clock class
// (imports are paced by the producer, so the generator must not merge
// them with the consumer's free inputs); with some probability it emits a
// "synchro" between two channels the producer is known to keep
// synchronous, which is exactly the interface obligation the linker must
// discharge with a BDD implication on the producer's forest.

/// Knobs of the two-process generator.
struct ProcessPairOptions {
  RandomProgramOptions Producer;
  RandomProgramOptions Consumer;
  /// Producer outputs wired into the consumer (at least 1, at most the
  /// producer's output count).
  unsigned MaxChannels = 3;
  /// Chance to synchro two channels that are synchronous in the producer.
  unsigned SynchroChannelPercent = 40;
};

/// One generated producer/consumer system.
struct GeneratedPair {
  std::string ProducerName, ConsumerName, SystemName;
  std::string ProducerSource, ConsumerSource;
  /// The monolithic textual composition: producer and consumer bodies in
  /// one process, channels turned into locals.
  std::string ComposedSource;
  /// The producer outputs the consumer imports.
  std::vector<std::string> Channels;
};

/// Generates one pair from \p Seed, deterministically.
GeneratedPair generateProcessPair(uint64_t Seed,
                                  const ProcessPairOptions &Options = {});

/// An N-stage pipeline: stage k imports channels from stage k-1.
struct GeneratedChain {
  std::vector<std::string> Names;   ///< Process name per stage.
  std::vector<std::string> Sources; ///< Source per stage.
  std::string SystemName;
  std::string ComposedSource;
  std::vector<std::string> Channels; ///< All inter-stage channels.
};

/// Generates an N-stage chain from \p Seed, deterministically.
GeneratedChain generateProcessChain(uint64_t Seed, unsigned Stages,
                                    const RandomProgramOptions &StageOptions = {},
                                    unsigned MaxChannels = 2,
                                    unsigned SynchroChannelPercent = 30);

/// Generates a *feedback* pair: LOOPA exports FA into LOOPB and imports
/// LOOPB's FB right back, so the channel graph has a unit-level cycle.
/// The dataflow is still acyclic at instruction granularity (FB is only
/// used in its own clock class, never combined with FA's), which is
/// exactly the composition instruction-level fusion accepts and
/// whole-unit scheduling had to reject. Coefficients and the bounding
/// modulus vary with \p Seed, deterministically.
GeneratedPair generateFeedbackPair(uint64_t Seed);

/// Generates a *diamond*: two producers pace their exports from one
/// shared external input, and the consumer's synchro spans both — an
/// obligation no single producer's forest can discharge, only the joint
/// clock space. Returned in chain form (three processes; the last is
/// the consumer). Coefficients vary with \p Seed, deterministically.
GeneratedChain generateDiamondSystem(uint64_t Seed);

} // namespace sigc

#endif // SIGNALC_TESTING_RANDOMPROGRAM_H
