//===--- TraceCompare.cpp -------------------------------------------------===//

#include "testing/TraceCompare.h"

#include <algorithm>

using namespace sigc;

std::vector<OutputEvent> sigc::canonicalTrace(std::vector<OutputEvent> Events) {
  std::stable_sort(Events.begin(), Events.end(),
                   [](const OutputEvent &L, const OutputEvent &R) {
                     if (L.Instant != R.Instant)
                       return L.Instant < R.Instant;
                     return L.Signal < R.Signal;
                   });
  return Events;
}

namespace {

std::string renderEvent(const OutputEvent &E) {
  return std::to_string(E.Instant) + " " + E.Signal + "=" + E.Val.str();
}

} // namespace

TraceDiff sigc::compareTraces(const std::string &NameA,
                              std::vector<OutputEvent> A,
                              const std::string &NameB,
                              std::vector<OutputEvent> B) {
  A = canonicalTrace(std::move(A));
  B = canonicalTrace(std::move(B));

  size_t N = std::min(A.size(), B.size());
  size_t Mismatch = N;
  for (size_t I = 0; I < N; ++I) {
    if (!(A[I] == B[I])) {
      Mismatch = I;
      break;
    }
  }
  if (Mismatch == N && A.size() == B.size())
    return {};

  TraceDiff D;
  D.Equal = false;
  std::string &R = D.Report;
  R += "traces diverge (" + NameA + ": " + std::to_string(A.size()) +
       " events, " + NameB + ": " + std::to_string(B.size()) + " events)\n";

  size_t ContextFrom = Mismatch >= 3 ? Mismatch - 3 : 0;
  for (size_t I = ContextFrom; I < Mismatch; ++I)
    R += "  both: " + renderEvent(A[I]) + "\n";
  if (Mismatch < A.size())
    R += "  " + NameA + ": " + renderEvent(A[Mismatch]) + "\n";
  else
    R += "  " + NameA + ": <end of trace>\n";
  if (Mismatch < B.size())
    R += "  " + NameB + ": " + renderEvent(B[Mismatch]) + "\n";
  else
    R += "  " + NameB + ": <end of trace>\n";
  return D;
}
