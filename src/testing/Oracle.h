//===--- Oracle.h - Differential simulation oracle --------------*- C++-*-===//
///
/// \file
/// The differential oracle behind the repo's correctness story: compile a
/// SIGNAL source, then run the same random input trace through every
/// execution path the compiler has —
///
///   1. the reference fixpoint interpreter (KernelInterp),
///   2. the compiled step program, flat control structure,
///   3. the compiled step program, nested control structure,
///   4. the slot-resolved VM (CompiledStep through VmExecutor), both
///      instant by instant and batched through the bulk environment
///      exchange (stepN windows),
///   5. the FleetExecutor — N instances of the same bytecode swept in
///      SoA lane blocks across shard threads, each instance pinned
///      trace- and counter-identical to a scalar VM run,
///   6. optionally, the emitted C — lowered from the same CompiledStep
///      bytecode — round-tripped through the host C compiler (-std=c99
///      -Wall -Werror) and executed as a subprocess, its generated
///      guard/executed counters pinned equal to the VM's,
///   7. optionally, the native tier's hot swap: the same bytecode
///      compiled to a shared object through the production cache path
///      and, at every batch boundary k, a run that interprets k
///      instants then finishes on the dlopen'd step function — pinned
///      trace- and counter-identical to the pure VM run,
///
/// and demand bit-identical output traces. Any divergence is a bug in the
/// clock hierarchy, the schedule, the step compiler or the C emitter, and
/// the report carries the program source plus the first differing events
/// so the failure reproduces from the test log alone.
///
//===----------------------------------------------------------------------===//

#ifndef SIGNALC_TESTING_ORACLE_H
#define SIGNALC_TESTING_ORACLE_H

#include "link/Linker.h"
#include "testing/RandomProgram.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sigc {

/// Options of one oracle run.
struct OracleOptions {
  unsigned Instants = 64;      ///< Reactions to execute.
  uint64_t EnvSeed = 1;        ///< RandomEnvironment seed.
  unsigned TickPermille = 800; ///< Free-clock tick probability.
  /// Window size of the batched VM/linked legs (stepN); every oracle run
  /// drives both the unbatched and the batched engine and demands
  /// identical traces and counters.
  unsigned BatchSize = 8;
  /// Also compile the emitted C with the host C compiler (-std=c99
  /// -Wall -Werror) and compare the subprocess trace and its
  /// guard/executed counters against the VM's. Skipped (not failed)
  /// when no compiler is found.
  bool EmitCRoundTrip = false;
  /// Also run the native tier's hot-swap leg: the CompiledStep is
  /// compiled to a shared object (in a throwaway cache directory) and,
  /// for every batch boundary k, the trace of "interpret k instants,
  /// swap the session onto the native step function, finish native"
  /// must equal the pure-VM trace bit for bit, final counters included.
  /// Skipped (not failed) when no host C compiler is found.
  bool NativeSwap = false;
  /// Instances of the fleet leg (0 disables it): a FleetExecutor sweeps
  /// this many per-instance environments (instance j seeded EnvSeed+j,
  /// instance 0 thus replaying the scalar legs' trace) and every
  /// instance's trace — plus the summed guard/executed counters — must
  /// equal a scalar VM run of that instance alone. When the C round-trip
  /// also runs, the harness self-checks `<proc>_step_fleet` against
  /// per-instance `<proc>_step_batch` over the same baked inputs.
  unsigned FleetInstances = 5;
  /// Lane-block size of the fleet leg (instances per SoA sweep block).
  unsigned FleetLaneBlock = 2;
  /// Shard threads of the fleet leg.
  unsigned FleetThreads = 2;
};

/// Outcome of one oracle run.
struct OracleReport {
  bool Ok = false;
  /// On failure: which paths diverged, the first differing events, and
  /// the program source (empty when Ok).
  std::string Error;
  /// Guard-test and instruction counters, exposed so tests can assert
  /// the Figure-9 effect (nested does at most as many tests as flat) and
  /// pin the VM's guard economics to the nested structure's exactly.
  uint64_t GuardTestsFlat = 0;
  uint64_t GuardTestsNested = 0;
  uint64_t GuardTestsVm = 0;
  uint64_t ExecutedFlat = 0;
  uint64_t ExecutedNested = 0;
  uint64_t ExecutedVm = 0;
  /// Counters of the emitted-C leg, parsed from the generated program's
  /// own state struct and pinned equal to the VM's (0 until the
  /// round-trip runs).
  uint64_t GuardTestsC = 0;
  uint64_t ExecutedC = 0;
  /// Linked-oracle counters: the monolithic nested run vs the linked
  /// system (sum over units). Zero for single-process reports.
  uint64_t GuardTestsMono = 0;
  uint64_t GuardTestsLinked = 0;
  /// Counters of the fleet leg: totals over all fleet instances, pinned
  /// inside the oracle to the sum of per-instance scalar VM runs.
  uint64_t GuardTestsFleet = 0;
  uint64_t ExecutedFleet = 0;
  /// True when the C round-trip actually ran (compiler available).
  bool CRoundTripRan = false;
  /// True when the native hot-swap leg ran (compiler available).
  bool NativeSwapRan = false;
  /// True when the C harness's in-C fleet self-check ran and passed
  /// (the harness compares `_step_fleet` against per-instance
  /// `_step_batch` and prints a #fleet line the oracle demands).
  bool CFleetChecked = false;
};

/// Runs the differential oracle on \p Source (named \p Name in reports).
OracleReport checkDifferential(const std::string &Name,
                               const std::string &Source,
                               const OracleOptions &Options = {});

/// Generates a random program from \p Seed and runs the oracle on it.
OracleReport checkRandomDifferential(uint64_t Seed,
                                     const RandomProgramOptions &GenOptions,
                                     const OracleOptions &Options = {});

/// \returns true when a host C compiler usable for the round-trip exists.
bool hostCCompilerAvailable();

/// The probed host C compiler command ("" when none was found) — the one
/// probe shared by the oracle's round-trips and bench_step's emitted-C
/// leg.
const std::string &hostCCompilerCommand();

//===----------------------------------------------------------------------===//
// Linked-system differential oracle
//===----------------------------------------------------------------------===//
//
// The separate-compilation counterpart: compile N processes in isolation,
// link them by interface, and demand the linked execution's trace be
// bit-identical to the *monolithic* compilation of the textually composed
// program — the executable form of the claim that interface matching can
// replace global clock resolution. Verified paths:
//
//   1. the monolithic compilation's nested step program (itself cross-
//      checked against the fixpoint interpreter),
//   2. the LinkedExecutor over the separately compiled units, both
//      instant by instant and batched per unit (stepN windows),
//   3. optionally, the linked C emission round-tripped through the host
//      C compiler, its per-unit counters pinned to the linked VM's.
//
// The report also fails if linking re-resolved any process's forest (node
// counts must not change between compilation and link).

/// Runs the linked differential oracle: \p Processes are compiled and
/// linked, \p ComposedSource is compiled monolithically, and all paths
/// must produce one trace.
OracleReport checkLinkedDifferential(const std::string &Name,
                                     const std::vector<LinkInput> &Processes,
                                     const std::string &ComposedSource,
                                     const OracleOptions &Options = {});

/// Generates a producer/consumer pair from \p Seed and runs the linked
/// oracle on it.
OracleReport checkRandomPairDifferential(uint64_t Seed,
                                         const ProcessPairOptions &GenOptions,
                                         const OracleOptions &Options = {});

} // namespace sigc

#endif // SIGNALC_TESTING_ORACLE_H
